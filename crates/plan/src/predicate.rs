//! Local (single-table) predicates, with optional parameter placeholders.

use bqo_storage::{Column, ColumnStats, StorageError, Value};
use std::collections::BTreeMap;

/// Comparison operators supported by local predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CompareOp {
    /// SQL-ish rendering used by plan explanations.
    pub fn symbol(&self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::NotEq => "<>",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        }
    }
}

/// The right-hand side of a predicate: a concrete literal, or a named
/// parameter placeholder to be filled in by [`Params`] at bind time.
#[derive(Debug, Clone, PartialEq)]
pub enum PredicateValue {
    /// A concrete literal — the predicate is executable as-is.
    Literal(Value),
    /// A named placeholder (`$name`): the predicate must be bound with
    /// [`ColumnPredicate::bind`] before it can be resolved or executed.
    Param(String),
}

impl PredicateValue {
    /// The literal, if this side is already bound.
    pub fn literal(&self) -> Option<&Value> {
        match self {
            PredicateValue::Literal(v) => Some(v),
            PredicateValue::Param(_) => None,
        }
    }

    /// The parameter name, if this side is a placeholder.
    pub fn param_name(&self) -> Option<&str> {
        match self {
            PredicateValue::Literal(_) => None,
            PredicateValue::Param(name) => Some(name),
        }
    }
}

impl std::fmt::Display for PredicateValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredicateValue::Literal(v) => write!(f, "{v}"),
            PredicateValue::Param(name) => write!(f, "${name}"),
        }
    }
}

/// A named set of parameter values for binding parameterized queries.
///
/// Built fluently (`Params::new().set("category", 3i64)`) and passed to
/// `QuerySpec::bind` / the engine's `bind` entry point, which substitutes
/// every [`PredicateValue::Param`] placeholder.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Params {
    values: BTreeMap<String, Value>,
}

impl Params {
    /// An empty parameter set.
    pub fn new() -> Self {
        Params::default()
    }

    /// Sets (or replaces) one parameter value.
    pub fn set(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.values.insert(name.into(), value.into());
        self
    }

    /// Looks up a parameter value.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.values.get(name)
    }

    /// The parameter names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.values.keys().map(|s| s.as_str())
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no parameters are set.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// A predicate of the form `column <op> value` applied to one relation, where
/// the value is either a literal or a named parameter placeholder.
///
/// Decision-support queries place these on dimension attributes (the
/// `k.keyword LIKE '%ge%'` style predicates in the paper's motivating query
/// are modelled as selectivity-equivalent comparisons on generated columns).
/// Parameterized predicates ([`ColumnPredicate::param`]) describe a query
/// *template*; [`ColumnPredicate::bind`] produces the executable literal
/// form.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnPredicate {
    /// Column the predicate restricts.
    pub column: String,
    /// Comparison operator.
    pub op: CompareOp,
    /// Literal or `$param` placeholder compared against.
    pub value: PredicateValue,
}

impl ColumnPredicate {
    /// Creates a literal predicate.
    pub fn new(column: impl Into<String>, op: CompareOp, value: impl Into<Value>) -> Self {
        ColumnPredicate {
            column: column.into(),
            op,
            value: PredicateValue::Literal(value.into()),
        }
    }

    /// Creates a parameterized predicate `column <op> $name`.
    pub fn param(column: impl Into<String>, op: CompareOp, name: impl Into<String>) -> Self {
        ColumnPredicate {
            column: column.into(),
            op,
            value: PredicateValue::Param(name.into()),
        }
    }

    /// True if the predicate still contains a parameter placeholder.
    pub fn is_parameterized(&self) -> bool {
        matches!(self.value, PredicateValue::Param(_))
    }

    /// Substitutes the parameter placeholder (if any) with its value from
    /// `params`, returning the executable literal predicate.
    ///
    /// # Errors
    /// [`StorageError::UnboundParameter`] if the placeholder's name is
    /// missing from `params`.
    pub fn bind(&self, params: &Params) -> Result<ColumnPredicate, StorageError> {
        match &self.value {
            PredicateValue::Literal(_) => Ok(self.clone()),
            PredicateValue::Param(name) => {
                let value = params
                    .get(name)
                    .cloned()
                    .ok_or_else(|| StorageError::UnboundParameter { name: name.clone() })?;
                Ok(ColumnPredicate {
                    column: self.column.clone(),
                    op: self.op,
                    value: PredicateValue::Literal(value),
                })
            }
        }
    }

    /// Evaluates the predicate against every row of a column, producing a
    /// selection mask.
    pub fn evaluate(&self, column: &Column) -> Vec<bool> {
        self.evaluate_range(column, 0, column.len())
    }

    /// Evaluates the predicate against the rows `start..end` of a column,
    /// producing a selection mask of length `end - start`. This is the
    /// morsel-kernel entry point: evaluating a column range by range yields
    /// exactly the same mask as one whole-column [`ColumnPredicate::evaluate`]
    /// pass.
    ///
    /// # Panics
    /// Panics if `start > end` or `end > column.len()`.
    pub fn evaluate_range(&self, column: &Column, start: usize, end: usize) -> Vec<bool> {
        let mut mask = vec![false; end - start];
        // An unbound parameter selects nothing; graph resolution rejects
        // parameterized predicates before execution, so this arm is only a
        // defensive fallback (mirroring the type-mismatch behaviour below).
        let PredicateValue::Literal(value) = &self.value else {
            return mask;
        };
        match (column, value) {
            (Column::Int64(values), Value::Int64(lit)) => {
                for (m, v) in mask.iter_mut().zip(&values[start..end]) {
                    *m = compare_ord(v.cmp(lit), self.op);
                }
            }
            (Column::Int64(values), Value::Float64(lit)) => {
                for (m, v) in mask.iter_mut().zip(&values[start..end]) {
                    *m = compare_ord((*v as f64).total_cmp(lit), self.op);
                }
            }
            (Column::Float64(values), Value::Float64(lit)) => {
                for (m, v) in mask.iter_mut().zip(&values[start..end]) {
                    *m = compare_ord(v.total_cmp(lit), self.op);
                }
            }
            (Column::Float64(values), Value::Int64(lit)) => {
                let lit = *lit as f64;
                for (m, v) in mask.iter_mut().zip(&values[start..end]) {
                    *m = compare_ord(v.total_cmp(&lit), self.op);
                }
            }
            (Column::Utf8(values), Value::Utf8(lit)) => {
                for (m, v) in mask.iter_mut().zip(&values[start..end]) {
                    *m = compare_ord(v.as_str().cmp(lit.as_str()), self.op);
                }
            }
            (Column::Bool(values), Value::Bool(lit)) => {
                for (m, v) in mask.iter_mut().zip(&values[start..end]) {
                    *m = compare_ord(v.cmp(lit), self.op);
                }
            }
            // Type mismatch: nothing qualifies. Workload generators never
            // produce mismatched predicates, but a silent empty result is a
            // safer behaviour than a panic for user-written queries.
            _ => {}
        }
        mask
    }

    /// Zone-map test: can *any* value `v` with `min <= v <= max` (under
    /// [`Value::total_cmp`], the order zone maps are computed in) satisfy
    /// this predicate? `false` proves the whole range fails, so a scan may
    /// skip a chunk with these bounds without reading it.
    ///
    /// Mirrors [`ColumnPredicate::evaluate_range`] arm by arm: the typed
    /// comparisons match, a type-mismatched predicate selects nothing (so
    /// the range is prunable), and an unbound parameter likewise selects
    /// nothing. The monotone `i64 -> f64` casts keep the mixed-numeric
    /// arms consistent with row-at-a-time evaluation.
    pub fn range_may_pass(&self, min: &Value, max: &Value) -> bool {
        let PredicateValue::Literal(value) = &self.value else {
            return false;
        };
        // Orderings of the range endpoints against the literal, in the
        // same typed comparison evaluate_range uses. `None` is the
        // type-mismatch arm: no row can pass.
        let bounds = match (min, max, value) {
            (Value::Int64(lo), Value::Int64(hi), Value::Int64(lit)) => {
                Some((lo.cmp(lit), hi.cmp(lit)))
            }
            (Value::Int64(lo), Value::Int64(hi), Value::Float64(lit)) => {
                Some(((*lo as f64).total_cmp(lit), (*hi as f64).total_cmp(lit)))
            }
            (Value::Float64(lo), Value::Float64(hi), Value::Float64(lit)) => {
                Some((lo.total_cmp(lit), hi.total_cmp(lit)))
            }
            (Value::Float64(lo), Value::Float64(hi), Value::Int64(lit)) => {
                let lit = *lit as f64;
                Some((lo.total_cmp(&lit), hi.total_cmp(&lit)))
            }
            (Value::Utf8(lo), Value::Utf8(hi), Value::Utf8(lit)) => {
                Some((lo.as_str().cmp(lit.as_str()), hi.as_str().cmp(lit.as_str())))
            }
            (Value::Bool(lo), Value::Bool(hi), Value::Bool(lit)) => {
                Some((lo.cmp(lit), hi.cmp(lit)))
            }
            _ => None,
        };
        let Some((lo_ord, hi_ord)) = bounds else {
            return false;
        };
        use std::cmp::Ordering::*;
        match self.op {
            // lit inside [min, max]?
            CompareOp::Eq => lo_ord != Greater && hi_ord != Less,
            // Only an all-lit chunk fails `<> lit`.
            CompareOp::NotEq => !(lo_ord == Equal && hi_ord == Equal),
            CompareOp::Lt => lo_ord == Less,
            CompareOp::Le => lo_ord != Greater,
            CompareOp::Gt => hi_ord == Greater,
            CompareOp::Ge => hi_ord != Less,
        }
    }

    /// Estimates the selectivity of this predicate from column statistics.
    ///
    /// A still-parameterized predicate has no value to estimate from; it
    /// falls back to the literal-free default of its operator class (the
    /// estimate is re-derived from the bound literal at bind time, so this
    /// path is only reachable when inspecting unbound templates).
    pub fn estimate_selectivity(&self, stats: &ColumnStats) -> f64 {
        let numeric = match &self.value {
            PredicateValue::Literal(Value::Int64(v)) => Some(*v as f64),
            PredicateValue::Literal(Value::Float64(v)) => Some(*v),
            _ => None,
        };
        match self.op {
            CompareOp::Eq => stats.eq_selectivity(),
            CompareOp::NotEq => (1.0 - stats.eq_selectivity()).max(0.0),
            CompareOp::Lt | CompareOp::Le => match numeric {
                Some(b) => stats.lt_selectivity(b),
                None => 0.33,
            },
            CompareOp::Gt | CompareOp::Ge => match numeric {
                Some(b) => stats.gt_selectivity(b),
                None => 0.33,
            },
        }
    }
}

fn compare_ord(ord: std::cmp::Ordering, op: CompareOp) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CompareOp::Eq => ord == Equal,
        CompareOp::NotEq => ord != Equal,
        CompareOp::Lt => ord == Less,
        CompareOp::Le => ord != Greater,
        CompareOp::Gt => ord == Greater,
        CompareOp::Ge => ord != Less,
    }
}

impl std::fmt::Display for ColumnPredicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} {}", self.column, self.op.symbol(), self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqo_storage::Column;

    #[test]
    fn evaluate_range_matches_whole_column_pass() {
        let c = Column::from(vec![3i64, 1, 4, 1, 5, 9, 2, 6]);
        for op in [
            CompareOp::Eq,
            CompareOp::NotEq,
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Gt,
            CompareOp::Ge,
        ] {
            let p = ColumnPredicate::new("x", op, 4i64);
            let whole = p.evaluate(&c);
            // Any partitioning into ranges reproduces the whole-column mask.
            for split in 0..=c.len() {
                let mut stitched = p.evaluate_range(&c, 0, split);
                stitched.extend(p.evaluate_range(&c, split, c.len()));
                assert_eq!(stitched, whole, "{op:?} split {split}");
            }
        }
        assert!(ColumnPredicate::new("x", CompareOp::Eq, 4i64)
            .evaluate_range(&c, 3, 3)
            .is_empty());
    }

    #[test]
    fn evaluate_int_comparisons() {
        let c = Column::from(vec![1i64, 5, 10]);
        assert_eq!(
            ColumnPredicate::new("x", CompareOp::Lt, 5i64).evaluate(&c),
            vec![true, false, false]
        );
        assert_eq!(
            ColumnPredicate::new("x", CompareOp::Le, 5i64).evaluate(&c),
            vec![true, true, false]
        );
        assert_eq!(
            ColumnPredicate::new("x", CompareOp::Eq, 5i64).evaluate(&c),
            vec![false, true, false]
        );
        assert_eq!(
            ColumnPredicate::new("x", CompareOp::NotEq, 5i64).evaluate(&c),
            vec![true, false, true]
        );
        assert_eq!(
            ColumnPredicate::new("x", CompareOp::Ge, 5i64).evaluate(&c),
            vec![false, true, true]
        );
        assert_eq!(
            ColumnPredicate::new("x", CompareOp::Gt, 5i64).evaluate(&c),
            vec![false, false, true]
        );
    }

    #[test]
    fn evaluate_mixed_numeric_types() {
        let c = Column::from(vec![1.0f64, 2.5, 4.0]);
        let mask = ColumnPredicate::new("x", CompareOp::Gt, 2i64).evaluate(&c);
        assert_eq!(mask, vec![false, true, true]);
        let ci = Column::from(vec![1i64, 3]);
        let mask = ColumnPredicate::new("x", CompareOp::Lt, 2.5f64).evaluate(&ci);
        assert_eq!(mask, vec![true, false]);
    }

    #[test]
    fn evaluate_strings_and_bools() {
        let c = Column::from(vec!["apple".to_string(), "banana".into()]);
        let mask = ColumnPredicate::new("s", CompareOp::Eq, "banana").evaluate(&c);
        assert_eq!(mask, vec![false, true]);
        let b = Column::from(vec![true, false, true]);
        let mask = ColumnPredicate::new("b", CompareOp::Eq, true).evaluate(&b);
        assert_eq!(mask, vec![true, false, true]);
    }

    #[test]
    fn type_mismatch_selects_nothing() {
        let c = Column::from(vec![1i64, 2]);
        let mask = ColumnPredicate::new("x", CompareOp::Eq, "oops").evaluate(&c);
        assert_eq!(mask, vec![false, false]);
    }

    #[test]
    fn selectivity_estimates() {
        let c = Column::from((0..100i64).collect::<Vec<_>>());
        let stats = bqo_storage::ColumnStats::compute(&c);
        let eq = ColumnPredicate::new("x", CompareOp::Eq, 5i64).estimate_selectivity(&stats);
        assert!((eq - 0.01).abs() < 1e-9);
        let lt = ColumnPredicate::new("x", CompareOp::Lt, 50i64).estimate_selectivity(&stats);
        assert!((lt - 0.5).abs() < 0.05);
        let gt = ColumnPredicate::new("x", CompareOp::Gt, 75i64).estimate_selectivity(&stats);
        assert!((gt - 0.25).abs() < 0.05);
        let ne = ColumnPredicate::new("x", CompareOp::NotEq, 5i64).estimate_selectivity(&stats);
        assert!(ne > 0.98);
    }

    /// Soundness of zone-map pruning: whenever `range_may_pass` says a
    /// chunk's `[min, max]` cannot satisfy the predicate, evaluating the
    /// predicate over that chunk must select nothing — for every operator,
    /// every typed arm, and the mismatch/param fallbacks.
    #[test]
    fn range_may_pass_is_sound_against_evaluate() {
        use bqo_storage::Value;
        let ops = [
            CompareOp::Eq,
            CompareOp::NotEq,
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Gt,
            CompareOp::Ge,
        ];
        let columns = [
            Column::from(vec![3i64, 7, 7, 12]),
            Column::from(vec![7i64, 7]),
            Column::from(vec![-2.5f64, 0.0, 7.0]),
            Column::from(vec!["kiwi".to_string(), "mango".into()]),
            Column::from(vec![true, true]),
        ];
        let literals = [
            Value::Int64(7),
            Value::Int64(-100),
            Value::Float64(7.0),
            Value::Float64(0.25),
            Value::Utf8("mango".into()),
            Value::Bool(true),
            Value::Bool(false),
        ];
        for column in &columns {
            // The chunk's zone bounds under the same order zone maps use.
            let mut min = column.value(0);
            let mut max = column.value(0);
            for i in 1..column.len() {
                let v = column.value(i);
                if v.total_cmp(&min) == std::cmp::Ordering::Less {
                    min = v.clone();
                }
                if v.total_cmp(&max) == std::cmp::Ordering::Greater {
                    max = v;
                }
            }
            for op in ops {
                for lit in &literals {
                    let p = ColumnPredicate {
                        column: "c".into(),
                        op,
                        value: PredicateValue::Literal(lit.clone()),
                    };
                    if !p.range_may_pass(&min, &max) {
                        assert!(
                            p.evaluate(column).iter().all(|&m| !m),
                            "pruned a passing chunk: {p} over {min:?}..{max:?}"
                        );
                    }
                }
                // Unbound parameters select nothing, so pruning is sound.
                let p = ColumnPredicate::param("c", op, "unbound");
                assert!(!p.range_may_pass(&min, &max));
            }
        }
        // Completeness spot-checks: in-range chunks are not prunable.
        let p = ColumnPredicate::new("c", CompareOp::Eq, 7i64);
        assert!(p.range_may_pass(&Value::Int64(3), &Value::Int64(12)));
        assert!(!p.range_may_pass(&Value::Int64(8), &Value::Int64(12)));
        let p = ColumnPredicate::new("c", CompareOp::NotEq, 7i64);
        assert!(!p.range_may_pass(&Value::Int64(7), &Value::Int64(7)));
        assert!(p.range_may_pass(&Value::Int64(7), &Value::Int64(8)));
        let p = ColumnPredicate::new("c", CompareOp::Lt, 5.5f64);
        assert!(p.range_may_pass(&Value::Int64(5), &Value::Int64(9)));
        assert!(!p.range_may_pass(&Value::Int64(6), &Value::Int64(9)));
    }

    #[test]
    fn display_is_readable() {
        let p = ColumnPredicate::new("price", CompareOp::Le, 10i64);
        assert_eq!(p.to_string(), "price <= 10");
        let p = ColumnPredicate::param("price", CompareOp::Le, "max_price");
        assert_eq!(p.to_string(), "price <= $max_price");
    }

    #[test]
    fn bind_substitutes_parameters() {
        let template = ColumnPredicate::param("price", CompareOp::Lt, "cap");
        assert!(template.is_parameterized());
        let bound = template.bind(&Params::new().set("cap", 10i64)).unwrap();
        assert!(!bound.is_parameterized());
        assert_eq!(bound, ColumnPredicate::new("price", CompareOp::Lt, 10i64));
        // Missing parameter is a descriptive error.
        let err = template.bind(&Params::new()).unwrap_err();
        assert!(matches!(
            err,
            bqo_storage::StorageError::UnboundParameter { ref name } if name == "cap"
        ));
        // Binding a literal predicate is a no-op regardless of params.
        let literal = ColumnPredicate::new("price", CompareOp::Lt, 5i64);
        assert_eq!(literal.bind(&Params::new()).unwrap(), literal);
    }

    #[test]
    fn unbound_parameter_selects_nothing_and_estimates_a_default() {
        let c = Column::from(vec![1i64, 2, 3]);
        let p = ColumnPredicate::param("x", CompareOp::Lt, "b");
        assert_eq!(p.evaluate(&c), vec![false, false, false]);
        let stats = bqo_storage::ColumnStats::compute(&c);
        let sel = p.estimate_selectivity(&stats);
        assert!(sel > 0.0 && sel <= 1.0);
    }

    #[test]
    fn params_accessors() {
        let params = Params::new().set("a", 1i64).set("b", "x");
        assert_eq!(params.len(), 2);
        assert!(!params.is_empty());
        assert_eq!(params.get("a"), Some(&bqo_storage::Value::Int64(1)));
        assert_eq!(params.get("missing"), None);
        assert_eq!(params.names().collect::<Vec<_>>(), vec!["a", "b"]);
        // Re-setting replaces.
        let params = params.set("a", 9i64);
        assert_eq!(params.get("a"), Some(&bqo_storage::Value::Int64(9)));
    }

    #[test]
    fn predicate_value_accessors() {
        let lit = PredicateValue::Literal(bqo_storage::Value::Int64(3));
        assert_eq!(lit.literal(), Some(&bqo_storage::Value::Int64(3)));
        assert_eq!(lit.param_name(), None);
        let param = PredicateValue::Param("p".into());
        assert_eq!(param.literal(), None);
        assert_eq!(param.param_name(), Some("p"));
        assert_eq!(param.to_string(), "$p");
    }
}
