//! The `Cout` cost model (Eq. 1 of the paper), bitvector-aware.
//!
//! `Cout` sums the cardinalities of every base table (after local predicates
//! and any bitvector filters pushed down to its scan) and every intermediate
//! join result. The same routine covers three situations:
//!
//! * **No bitvectors** — plain `Cout`, what a conventional optimizer
//!   minimizes (the paper's baseline costing).
//! * **Bitvectors added by post-processing** — Algorithm 1 run on a plan that
//!   was chosen without considering filters (Figure 2c).
//! * **Bitvector-aware optimization** — the BQO algorithm evaluates candidate
//!   right-deep trees under this same bitvector-aware `Cout` (Figure 2d).
//!
//! Estimated cardinalities come from [`CardinalityEstimator`]; the reduction
//! of a scan or join output by pushed-down filters uses the no-false-positive
//! semi-join semantics of Section 3.2.

use crate::estimator::CardinalityEstimator;
use crate::graph::{JoinGraph, RelId};
use crate::physical::{NodeId, PhysicalNode, PhysicalPlan};
use crate::pushdown::push_down_bitvectors;
use crate::tree::{JoinTree, RightDeepTree};
use std::collections::{BTreeSet, HashMap};

/// Per-plan cost report.
#[derive(Debug, Clone, PartialEq)]
pub struct CoutBreakdown {
    /// Total `Cout`: sum of base-table and join-output cardinalities.
    pub total: f64,
    /// Sum over base-table scans (after filters pushed down to them).
    pub base_total: f64,
    /// Sum over join outputs.
    pub join_total: f64,
    /// Estimated output cardinality of every operator, by node id.
    pub per_node: Vec<(NodeId, f64)>,
}

impl CoutBreakdown {
    /// The estimated output cardinality of one operator.
    pub fn card_of(&self, node: NodeId) -> Option<f64> {
        self.per_node
            .iter()
            .find(|(id, _)| *id == node)
            .map(|(_, c)| *c)
    }
}

/// Bitvector-aware `Cout` cost model bound to one join graph.
#[derive(Debug, Clone, Copy)]
pub struct CostModel<'a> {
    graph: &'a JoinGraph,
    estimator: CardinalityEstimator<'a>,
}

impl<'a> CostModel<'a> {
    /// Creates a cost model for a join graph.
    pub fn new(graph: &'a JoinGraph) -> Self {
        CostModel {
            graph,
            estimator: CardinalityEstimator::new(graph),
        }
    }

    /// The underlying estimator.
    pub fn estimator(&self) -> &CardinalityEstimator<'a> {
        &self.estimator
    }

    /// `Cout` of a right-deep tree, with or without bitvector filters.
    pub fn cout_right_deep(&self, tree: &RightDeepTree, with_bitvectors: bool) -> CoutBreakdown {
        self.cout_join_tree(&tree.to_join_tree(), with_bitvectors)
    }

    /// Total `Cout` of a right-deep tree (convenience wrapper).
    pub fn cout_right_deep_total(&self, tree: &RightDeepTree, with_bitvectors: bool) -> f64 {
        self.cout_right_deep(tree, with_bitvectors).total
    }

    /// `Cout` of an arbitrary join tree, with or without bitvector filters.
    /// When `with_bitvectors` is set, Algorithm 1 is run on the physical form
    /// of the tree first (this is exactly the "post-processing" treatment a
    /// conventional optimizer applies to its chosen plan).
    pub fn cout_join_tree(&self, tree: &JoinTree, with_bitvectors: bool) -> CoutBreakdown {
        let mut plan = PhysicalPlan::from_join_tree(self.graph, tree);
        if with_bitvectors {
            plan = push_down_bitvectors(self.graph, plan);
        }
        self.cout_physical(&plan)
    }

    /// `Cout` of a physical plan, honouring whatever bitvector placements it
    /// carries.
    pub fn cout_physical(&self, plan: &PhysicalPlan) -> CoutBreakdown {
        let mut eff_sets: HashMap<NodeId, BTreeSet<RelId>> = HashMap::new();
        self.effective_set(plan, plan.root(), &mut eff_sets);

        let mut per_node = Vec::with_capacity(plan.num_nodes());
        let mut base_total = 0.0;
        let mut join_total = 0.0;
        for (id, node) in plan.nodes() {
            let rel_set = plan.relation_set(id);
            let eff = eff_sets
                .get(&id)
                .cloned()
                .unwrap_or_else(|| rel_set.clone());
            let external: BTreeSet<RelId> = eff.difference(&rel_set).copied().collect();
            let card = self.estimator.semi_reduced_card(&rel_set, &external);
            per_node.push((id, card));
            match node {
                PhysicalNode::Scan { .. } => base_total += card,
                PhysicalNode::HashJoin { .. } => join_total += card,
            }
        }
        CoutBreakdown {
            total: base_total + join_total,
            base_total,
            join_total,
            per_node,
        }
    }

    /// Estimated output cardinality of the whole plan (the final join
    /// result), honouring bitvector placements.
    pub fn estimated_output(&self, plan: &PhysicalPlan) -> f64 {
        self.cout_physical(plan).card_of(plan.root()).unwrap_or(0.0)
    }

    /// Estimated fraction of rows a bitvector filter eliminates at its target
    /// (the paper's λ used by the cost-based filter selection, Section 6.3).
    pub fn estimated_elimination_fraction(
        &self,
        plan: &PhysicalPlan,
        placement_index: usize,
    ) -> f64 {
        let placement = &plan.placements[placement_index];
        let mut eff_sets: HashMap<NodeId, BTreeSet<RelId>> = HashMap::new();
        self.effective_set(plan, plan.root(), &mut eff_sets);

        // Source side: the effective relation set feeding the filter.
        let source_set = match plan.node(placement.source_join) {
            PhysicalNode::HashJoin { build, .. } => eff_sets
                .get(build)
                .cloned()
                .unwrap_or_else(|| plan.relation_set(*build)),
            _ => return 0.0,
        };
        // Target side: cardinality before this particular filter, i.e. the
        // target's relation set reduced by every *other* filter that reaches
        // it.
        let target_rels = plan.relation_set(placement.target);
        let mut other_external: BTreeSet<RelId> = BTreeSet::new();
        for (i, p) in plan.placements.iter().enumerate() {
            if i == placement_index || p.target != placement.target {
                continue;
            }
            if let PhysicalNode::HashJoin { build, .. } = plan.node(p.source_join) {
                let s = eff_sets
                    .get(build)
                    .cloned()
                    .unwrap_or_else(|| plan.relation_set(*build));
                other_external.extend(s.difference(&target_rels).copied());
            }
        }
        let before = self
            .estimator
            .semi_reduced_card(&target_rels, &other_external);
        let mut with_this: BTreeSet<RelId> = other_external.clone();
        with_this.extend(source_set.difference(&target_rels).copied());
        let after = self.estimator.semi_reduced_card(&target_rels, &with_this);
        if before <= 0.0 {
            0.0
        } else {
            (1.0 - after / before).clamp(0.0, 1.0)
        }
    }

    /// Computes, for every node, the "effective" relation set: the node's own
    /// relations plus (transitively) the relations standing behind every
    /// bitvector filter applied at or below it. The estimated cardinality of
    /// the node is the semi-join-reduced cardinality of its relation set with
    /// respect to the external part of this effective set.
    fn effective_set(
        &self,
        plan: &PhysicalPlan,
        node: NodeId,
        memo: &mut HashMap<NodeId, BTreeSet<RelId>>,
    ) -> BTreeSet<RelId> {
        if let Some(set) = memo.get(&node) {
            return set.clone();
        }
        let mut set: BTreeSet<RelId> = match plan.node(node) {
            PhysicalNode::Scan { relation } => [*relation].into_iter().collect(),
            PhysicalNode::HashJoin { build, probe, .. } => {
                let mut s = self.effective_set(plan, *build, memo);
                s.extend(self.effective_set(plan, *probe, memo));
                s
            }
        };
        // Filters applied at this node contribute the effective set of the
        // source join's build side.
        for placement in plan.placements_at(node) {
            if let PhysicalNode::HashJoin { build, .. } = plan.node(placement.source_join) {
                set.extend(self.effective_set(plan, *build, memo));
            }
        }
        memo.insert(node, set.clone());
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{JoinEdge, JoinGraph, RelationInfo};

    /// Star: fact 1M rows; d1 100 rows filtered to 10; d2 1000 rows
    /// unfiltered; d3 10 rows filtered to 2.
    fn star() -> (JoinGraph, RelId, Vec<RelId>) {
        let mut g = JoinGraph::new();
        let fact = g.add_relation(RelationInfo::new("fact", 1_000_000.0, 1_000_000.0));
        let d1 = g.add_relation(RelationInfo::new("d1", 100.0, 10.0));
        let d2 = g.add_relation(RelationInfo::new("d2", 1000.0, 1000.0));
        let d3 = g.add_relation(RelationInfo::new("d3", 10.0, 2.0));
        g.add_edge(JoinEdge::pkfk(fact, "d1_sk", d1, "sk", 100.0));
        g.add_edge(JoinEdge::pkfk(fact, "d2_sk", d2, "sk", 1000.0));
        g.add_edge(JoinEdge::pkfk(fact, "d3_sk", d3, "sk", 10.0));
        (g, fact, vec![d1, d2, d3])
    }

    #[test]
    fn plain_cout_of_star_plan() {
        let (g, fact, d) = star();
        let model = CostModel::new(&g);
        // T(fact, d1, d2, d3) without bitvectors:
        // base: 1M + 10 + 1000 + 2
        // joins: fact⋈d1 = 100k; ⋈d2 = 100k; ⋈d3 = 20k
        let tree = RightDeepTree::new(vec![fact, d[0], d[1], d[2]]);
        let cost = model.cout_right_deep(&tree, false);
        let expected_base = 1_000_000.0 + 10.0 + 1000.0 + 2.0;
        let expected_joins = 100_000.0 + 100_000.0 + 20_000.0;
        assert!((cost.base_total - expected_base).abs() < 1e-6);
        assert!((cost.join_total - expected_joins).abs() < 1e-6);
        assert!((cost.total - (expected_base + expected_joins)).abs() < 1e-6);
    }

    #[test]
    fn bitvector_cout_reduces_fact_scan_and_intermediates() {
        let (g, fact, d) = star();
        let model = CostModel::new(&g);
        let tree = RightDeepTree::new(vec![fact, d[0], d[1], d[2]]);
        let cost = model.cout_right_deep(&tree, true);
        // With all three dimension filters pushed to the fact scan, the fact
        // contributes |fact ⋈ d1 ⋈ d2 ⋈ d3| = 20k, and every join output is
        // also 20k (Lemma 4).
        let expected_base = 20_000.0 + 10.0 + 1000.0 + 2.0;
        let expected_joins = 3.0 * 20_000.0;
        assert!((cost.base_total - expected_base).abs() < 1e-3);
        assert!((cost.join_total - expected_joins).abs() < 1e-3);
        // And it is much cheaper than the same plan without bitvectors.
        let plain = model.cout_right_deep(&tree, false);
        assert!(cost.total < plain.total / 5.0);
    }

    #[test]
    fn all_dimension_permutations_cost_the_same_with_fact_rightmost() {
        // Lemma 4: with R0 as the right-most leaf, every permutation of the
        // dimensions has the same bitvector-aware cost.
        let (g, fact, d) = star();
        let model = CostModel::new(&g);
        let orders = [
            vec![fact, d[0], d[1], d[2]],
            vec![fact, d[2], d[1], d[0]],
            vec![fact, d[1], d[0], d[2]],
            vec![fact, d[2], d[0], d[1]],
        ];
        let costs: Vec<f64> = orders
            .iter()
            .map(|o| model.cout_right_deep_total(&RightDeepTree::new(o.clone()), true))
            .collect();
        for w in costs.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-6, "costs differ: {costs:?}");
        }
    }

    #[test]
    fn dimension_first_plans_cost_the_same_regardless_of_remaining_order() {
        // Lemma 5: with R_k as the right-most leaf followed by R0, the order
        // of the remaining dimensions does not matter.
        let (g, fact, d) = star();
        let model = CostModel::new(&g);
        let a = RightDeepTree::new(vec![d[0], fact, d[1], d[2]]);
        let b = RightDeepTree::new(vec![d[0], fact, d[2], d[1]]);
        let ca = model.cout_right_deep_total(&a, true);
        let cb = model.cout_right_deep_total(&b, true);
        assert!((ca - cb).abs() < 1e-6);
    }

    #[test]
    fn post_processing_is_worse_than_bitvector_aware_choice() {
        // The motivating observation (Figure 2): the plan that is best
        // without bitvectors is not best once filters are considered. Build
        // an asymmetric star where joining the highly selective dimension
        // first is best without filters, but with filters another right-most
        // leaf wins.
        let mut g = JoinGraph::new();
        let fact = g.add_relation(RelationInfo::new("fact", 4_500_000.0, 4_500_000.0));
        // "title"-like dimension: large, mildly filtered.
        let t = g.add_relation(RelationInfo::new("t", 2_500_000.0, 715_000.0));
        // "keyword"-like dimension: small, selective.
        let k = g.add_relation(RelationInfo::new("k", 134_000.0, 7000.0));
        g.add_edge(JoinEdge::pkfk(fact, "t_sk", t, "sk", 2_500_000.0));
        g.add_edge(JoinEdge::pkfk(fact, "k_sk", k, "sk", 134_000.0));
        let model = CostModel::new(&g);

        let candidates = [
            RightDeepTree::new(vec![fact, t, k]),
            RightDeepTree::new(vec![fact, k, t]),
            RightDeepTree::new(vec![t, fact, k]),
            RightDeepTree::new(vec![k, fact, t]),
        ];
        let best_plain = candidates
            .iter()
            .min_by(|a, b| {
                model
                    .cout_right_deep_total(a, false)
                    .total_cmp(&model.cout_right_deep_total(b, false))
            })
            .unwrap();
        let best_bv = candidates
            .iter()
            .min_by(|a, b| {
                model
                    .cout_right_deep_total(a, true)
                    .total_cmp(&model.cout_right_deep_total(b, true))
            })
            .unwrap();
        // Post-processing the plain-best plan with bitvectors must not beat
        // the bitvector-aware best plan.
        let post = model.cout_right_deep_total(best_plain, true);
        let aware = model.cout_right_deep_total(best_bv, true);
        assert!(aware <= post + 1e-9);
        // And the bitvector-aware best plan would look suboptimal to a
        // conventional optimizer.
        assert!(
            model.cout_right_deep_total(best_bv, false)
                >= model.cout_right_deep_total(best_plain, false)
        );
    }

    #[test]
    fn estimated_output_matches_full_join_card() {
        let (g, fact, d) = star();
        let model = CostModel::new(&g);
        let tree = RightDeepTree::new(vec![fact, d[0], d[1], d[2]]).to_join_tree();
        let plan = push_down_bitvectors(&g, PhysicalPlan::from_join_tree(&g, &tree));
        let out = model.estimated_output(&plan);
        assert!((out - 20_000.0).abs() < 1e-3);
    }

    #[test]
    fn elimination_fraction_reflects_dimension_selectivity() {
        let (g, fact, d) = star();
        let model = CostModel::new(&g);
        let tree = RightDeepTree::new(vec![fact, d[0], d[1], d[2]]).to_join_tree();
        let plan = push_down_bitvectors(&g, PhysicalPlan::from_join_tree(&g, &tree));
        // Find the placement sourced from the join whose build is d2 (the
        // unfiltered dimension): it eliminates (almost) nothing.
        for (idx, p) in plan.placements.iter().enumerate() {
            let lambda = model.estimated_elimination_fraction(&plan, idx);
            let src_build = match plan.node(p.source_join) {
                PhysicalNode::HashJoin { build, .. } => *build,
                _ => unreachable!(),
            };
            let src_rels = plan.relation_set(src_build);
            if src_rels.contains(&d[1]) {
                assert!(
                    lambda < 0.05,
                    "unfiltered dim should not eliminate: {lambda}"
                );
            }
            if src_rels.contains(&d[2]) {
                assert!(lambda > 0.5, "d3 keeps 20%, so λ should be ~0.8: {lambda}");
            }
        }
    }

    #[test]
    fn breakdown_card_lookup() {
        let (g, fact, d) = star();
        let model = CostModel::new(&g);
        let tree = RightDeepTree::new(vec![fact, d[0]]);
        let cost = model.cout_right_deep(&tree, false);
        assert_eq!(cost.per_node.len(), 3);
        assert!(cost.card_of(NodeId(0)).is_some());
        assert!(cost.card_of(NodeId(99)).is_none());
    }
}
