//! Fixture-driven rule tests: every rule must fire on the seeded violations
//! and stay quiet on the tricky negatives (markers inside strings, raw
//! strings and block comments, `#[cfg(test)]` code, vendored prefixes,
//! blank-line-separated justification blocks).
//!
//! The fixture trees under `tests/fixtures/` are deliberately excluded from
//! the real workspace walk (`discover_rs_files` skips `fixtures` dirs), so
//! the seeded violations never leak into `cargo run -p bqo-lint`.

use bqo_lint::{run, Config, Diagnostic, Rule, WALL_BASE};
use std::path::PathBuf;

fn fixture_config(name: &str) -> Config {
    Config {
        root: PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("tests/fixtures")
            .join(name),
        audit_file: "UNSAFE_AUDIT.md".to_string(),
        allowlist_file: "panic_allowlist.txt".to_string(),
        panic_free_prefixes: vec!["lib/".to_string()],
        cast_audited_files: vec!["lib/hot.rs".to_string()],
        ci_file: "ci.yml".to_string(),
        suites_dir: "suites".to_string(),
        wall: vec![("lib/lib.rs".to_string(), WALL_BASE.to_vec())],
        vendored_prefixes: vec!["vendored/".to_string()],
    }
}

fn at(findings: &[Diagnostic], rule: Rule) -> Vec<&Diagnostic> {
    findings.iter().filter(|d| d.rule == rule).collect()
}

#[test]
fn every_rule_fires_on_the_violation_fixture() {
    let findings = run(&fixture_config("violations")).expect("fixture walk");

    // L001: missing SAFETY marker + missing audit entry on the live site,
    // plus the stale inventory entry pointing at nothing.
    let l001 = at(&findings, Rule::L001);
    assert_eq!(l001.len(), 3, "{l001:#?}");
    assert!(l001
        .iter()
        .any(|d| d.path == "lib/unsafe_bad.rs" && d.line == 2 && d.message.contains("SAFETY")));
    assert!(l001
        .iter()
        .any(|d| d.path == "lib/unsafe_bad.rs" && d.line == 2 && d.message.contains("not listed")));
    assert!(l001
        .iter()
        .any(|d| d.path == "UNSAFE_AUDIT.md" && d.message.contains("stale audit entry")));

    // L002: the unwrap, the panic!, and the unused allowlist entry. The
    // empty-reason entry must not exempt the unwrap.
    let l002 = at(&findings, Rule::L002);
    assert_eq!(l002.len(), 3, "{l002:#?}");
    assert!(l002
        .iter()
        .any(|d| d.path == "lib/panics.rs" && d.line == 2 && d.message.contains("`unwrap`")));
    assert!(l002
        .iter()
        .any(|d| d.path == "lib/panics.rs" && d.line == 6 && d.message.contains("`panic`")));
    assert!(l002
        .iter()
        .any(|d| d.path == "panic_allowlist.txt" && d.message.contains("unused allowlist entry")));

    // L003: the unannotated Relaxed fetch_add.
    let l003 = at(&findings, Rule::L003);
    assert_eq!(l003.len(), 1, "{l003:#?}");
    assert_eq!((l003[0].path.as_str(), l003[0].line), ("lib/atomics.rs", 4));
    assert!(l003[0].message.contains("Ordering::Relaxed"));

    // L004: the bare narrowing cast in the audited hot file.
    let l004 = at(&findings, Rule::L004);
    assert_eq!(l004.len(), 1, "{l004:#?}");
    assert_eq!((l004[0].path.as_str(), l004[0].line), ("lib/hot.rs", 2));
    assert!(l004[0].message.contains("`as u32`"));

    // L005: the suite CI never mentions.
    let l005 = at(&findings, Rule::L005);
    assert_eq!(l005.len(), 1, "{l005:#?}");
    assert!(l005[0].message.contains("`orphan`"));

    // L006: the half-built wall and the uncovered crate root.
    let l006 = at(&findings, Rule::L006);
    assert_eq!(l006.len(), 2, "{l006:#?}");
    assert!(l006
        .iter()
        .any(|d| d.path == "lib/lib.rs" && d.message.contains("missing_debug_implementations")));
    assert!(l006
        .iter()
        .any(|d| d.path == "extra/src/lib.rs" && d.message.contains("not covered")));

    // Lex: the unterminated string literal is reported, not a crash.
    let lex = at(&findings, Rule::Lex);
    assert_eq!(lex.len(), 1, "{lex:#?}");
    assert_eq!(lex[0].path, "lib/broken.rs");
}

#[test]
fn tricky_negatives_stay_quiet() {
    let findings = run(&fixture_config("clean")).expect("fixture walk");
    assert!(
        findings.is_empty(),
        "clean fixture produced findings:\n{}",
        findings
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn diagnostics_render_rustc_style() {
    let findings = run(&fixture_config("violations")).expect("fixture walk");
    let cast = at(&findings, Rule::L004)[0].to_string();
    assert!(cast.starts_with("error[L004]: "), "{cast}");
    assert!(cast.contains("\n  --> lib/hot.rs:2:"), "{cast}");
    assert!(cast.contains("\n  note: in: x as u32"), "{cast}");
}

#[test]
fn findings_are_sorted_by_path_and_position() {
    let findings = run(&fixture_config("violations")).expect("fixture walk");
    let keys: Vec<_> = findings
        .iter()
        .map(|d| (d.path.clone(), d.line, d.col))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}
