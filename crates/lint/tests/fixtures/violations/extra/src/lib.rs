//! A crate root that is not named in the lint-wall configuration, so the
//! L006 coverage check fires.
