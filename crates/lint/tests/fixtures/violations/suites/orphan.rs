pub fn not_referenced_anywhere() {}
