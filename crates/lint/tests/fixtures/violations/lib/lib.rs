//! Fixture crate root carrying only half the lint wall, so L006 reports
//! the missing `missing_debug_implementations` attribute.
#![deny(unsafe_op_in_unsafe_fn)]
