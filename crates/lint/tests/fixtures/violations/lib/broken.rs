pub const MESSAGE: &str = "unterminated
