pub fn first(v: &[i32]) -> i32 {
    *v.first().unwrap()
}

pub fn boom() {
    panic!("fixture violation");
}
