pub fn referenced_in_ci() {}
