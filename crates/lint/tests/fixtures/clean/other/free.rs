// Outside the panic-free prefixes and the cast-audited file list: bare
// casts and unwraps here are not findings.
pub fn last(v: &[u8]) -> u8 {
    *v.last().unwrap()
}

pub fn widen_len(v: &[u8]) -> u64 {
    v.len() as u64
}
