use std::sync::atomic::{AtomicUsize, Ordering};

/// Raw strings mentioning markers and triggers are inert.
pub const DECOY: &str = r#"unsafe { } Ordering::Relaxed .unwrap() as u64"#;

pub fn read_byte(p: *const u8) -> u8 {
    // SAFETY: fixture callers pass a pointer to a live byte; this block
    // also proves marker attachment through a multi-line comment block.
    unsafe { *p }
}

pub fn counter_bump(c: &AtomicUsize) -> usize {
    c.fetch_add(1, Ordering::Relaxed) // ORDERING: monotonic fixture counter; needs no synchronization
}

pub fn acquire_load(c: &AtomicUsize) -> usize {
    // ORDERING: pairs with a Release store elsewhere; the blank line below
    // must not detach this justification from the load.

    c.load(Ordering::Acquire)
}

/// `std::cmp::Ordering` variants never look like atomic orderings.
pub fn compare(a: i32, b: i32) -> std::cmp::Ordering {
    a.cmp(&b)
}

/// Idents that merely contain a panic-method name are not findings.
pub fn unwrap_like_names(v: Option<i32>) -> i32 {
    v.unwrap_or_default()
}

/// Covered by the fixture allowlist entry, with a reason.
pub fn allowlisted(v: Option<u32>) -> u32 {
    v.expect("fixture invariant")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panics_and_bare_orderings_are_fine_in_tests() {
        assert_eq!(read_byte(&7u8), 7);
        let v: Vec<i32> = vec![1];
        v.first().unwrap();
        let c = AtomicUsize::new(0);
        c.fetch_add(1, Ordering::Relaxed);
    }
}
