pub fn trailing(x: u64) -> u32 {
    x as u32 // CAST-OK: fixture narrowing justified inline
}

pub fn block_above(x: u64) -> u16 {
    // CAST-OK: fixture narrowing justified by the comment block
    // ending on the previous line.
    x as u16
}

pub fn widen(x: u32) -> u64 {
    u64::from(x)
}
