//! Clean fixture crate root: the full wall, plus decoys that merely
//! mention trigger words inside comments and string literals.
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_debug_implementations)]

/// Strings and comments mentioning the trigger words must stay quiet.
pub fn decoys() -> &'static str {
    // A line comment saying .unwrap() or panic!("x") is not a finding.
    /* Nor is a block comment with unsafe { } or Ordering::Relaxed. */
    "string decoys: .unwrap() panic!(\"x\") unsafe { } Ordering::SeqCst as u32"
}
