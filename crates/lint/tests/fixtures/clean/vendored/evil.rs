// Vendored-prefix file: modelled external code is exempt from every rule.
pub fn evil(p: *const u8) -> u8 {
    let x = unsafe { *p };
    if x == 255 {
        panic!("vendored shims are exempt");
    }
    x
}
