//! `bqo-lint` CLI: lints the workspace and exits non-zero on findings.
//!
//! Usage: `cargo run -p bqo-lint [-- <workspace-root>]`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let explicit: Option<PathBuf> = std::env::args_os().nth(1).map(PathBuf::from);
    let Some(root) = bqo_lint::find_workspace_root(explicit.as_deref()) else {
        eprintln!("bqo-lint: could not locate the workspace root (pass it as an argument)");
        return ExitCode::FAILURE;
    };
    let config = bqo_lint::Config::workspace(&root);
    match bqo_lint::run(&config) {
        Ok(diagnostics) if diagnostics.is_empty() => {
            println!("bqo-lint: workspace clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(diagnostics) => {
            for d in &diagnostics {
                eprintln!("{d}\n");
            }
            eprintln!("bqo-lint: {} finding(s)", diagnostics.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bqo-lint: i/o error while linting: {e}");
            ExitCode::FAILURE
        }
    }
}
