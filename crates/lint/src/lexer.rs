//! A small hand-rolled Rust lexer — just enough syntax awareness for the
//! lint rules in this crate, with zero dependencies (the build environment
//! has no registry access, so `syn` is not an option).
//!
//! The lexer's one job is to separate **code** from **non-code** reliably:
//! identifiers and punctuation must never be reported from inside string
//! literals, char literals, raw strings, or comments, and comments must be
//! recoverable with exact line spans so rules can look for justification
//! markers (`// SAFETY:`, `// ORDERING:`, `// CAST-OK:`) adjacent to a
//! flagged site. It handles the full literal surface that matters for that
//! job:
//!
//! * line (`//`, `///`, `//!`) and nested block (`/* /* */ */`) comments,
//! * string/byte-string literals with escapes (`"a \" b"`, `b"…"`),
//! * raw strings with arbitrary hash fences (`r"…"`, `r#"…"#`, `br##"…"##`),
//! * char literals vs. lifetimes (`'a'`, `'\n'` vs. `'static`),
//! * raw identifiers (`r#type`),
//! * numeric literals (loosely — rules only care that they are not idents).
//!
//! It deliberately does **not** build an AST: rules work on the flat token
//! stream plus line-indexed comment text, which is robust to code it has
//! never seen and keeps the whole engine a few hundred lines.

/// What a [`Token`] is. Only the distinctions the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unsafe`, `as`, `Ordering`, …).
    Ident,
    /// A single punctuation character (`.`, `!`, `:`, `{`, …).
    Punct,
    /// A string, byte-string, or raw-string literal.
    Str,
    /// A char literal (`'x'`, `'\n'`).
    Char,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A numeric literal.
    Number,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token's text. For [`TokenKind::Str`] the text is the opening
    /// delimiter only — rules never need string contents, and dropping them
    /// keeps token streams small.
    pub text: String,
    /// Which kind of token this is.
    pub kind: TokenKind,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// 1-based column (in characters) of the token's first character.
    pub col: usize,
}

/// One comment with its exact line span.
#[derive(Debug, Clone)]
pub struct Comment {
    /// The comment's text, including its delimiters.
    pub text: String,
    /// 1-based first line the comment covers.
    pub line: usize,
    /// 1-based last line the comment covers (same as `line` for line
    /// comments; block comments may span many).
    pub end_line: usize,
    /// 1-based column of the opening delimiter.
    pub col: usize,
}

/// A fatal lexing problem (unterminated literal or comment). Reported as a
/// diagnostic rather than panicking: a lint must never crash on weird input.
#[derive(Debug, Clone)]
pub struct LexError {
    /// Human-readable description of what was left unterminated.
    pub message: String,
    /// 1-based line where the offending construct started.
    pub line: usize,
    /// 1-based column where the offending construct started.
    pub col: usize,
}

/// The output of [`lex`]: tokens and comments, in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens, in order.
    pub tokens: Vec<Token>,
    /// All comments, in order.
    pub comments: Vec<Comment>,
}

struct Scanner<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    col: usize,
}

impl<'a> Scanner<'a> {
    fn new(source: &'a str) -> Self {
        Scanner {
            chars: source.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into tokens and comments.
pub fn lex(source: &str) -> Result<Lexed, LexError> {
    let mut s = Scanner::new(source);
    let mut out = Lexed::default();
    while let Some(c) = s.peek() {
        let (line, col) = (s.line, s.col);
        match c {
            c if c.is_whitespace() => {
                s.bump();
            }
            '/' => {
                s.bump();
                match s.peek() {
                    Some('/') => lex_line_comment(&mut s, &mut out, line, col),
                    Some('*') => lex_block_comment(&mut s, &mut out, line, col)?,
                    _ => push_punct(&mut out, '/', line, col),
                }
            }
            '"' => lex_string(&mut s, &mut out, line, col, "\"")?,
            '\'' => lex_quote(&mut s, &mut out, line, col)?,
            'r' | 'b' => lex_maybe_prefixed(&mut s, &mut out, line, col)?,
            c if is_ident_start(c) => lex_ident(&mut s, &mut out, line, col),
            c if c.is_ascii_digit() => lex_number(&mut s, &mut out, line, col),
            c => {
                s.bump();
                push_punct(&mut out, c, line, col);
            }
        }
    }
    Ok(out)
}

fn push_punct(out: &mut Lexed, c: char, line: usize, col: usize) {
    out.tokens.push(Token {
        text: c.to_string(),
        kind: TokenKind::Punct,
        line,
        col,
    });
}

fn lex_line_comment(s: &mut Scanner<'_>, out: &mut Lexed, line: usize, col: usize) {
    let mut text = String::from("/");
    while let Some(c) = s.peek() {
        if c == '\n' {
            break;
        }
        text.push(c);
        s.bump();
    }
    out.comments.push(Comment {
        text,
        line,
        end_line: line,
        col,
    });
}

fn lex_block_comment(
    s: &mut Scanner<'_>,
    out: &mut Lexed,
    line: usize,
    col: usize,
) -> Result<(), LexError> {
    // The leading `/` was consumed by the caller; `*` is next. Rust block
    // comments nest.
    let mut text = String::from("/");
    let mut depth = 0usize;
    let mut prev = '/';
    while let Some(c) = s.bump() {
        text.push(c);
        if prev == '/' && c == '*' {
            depth += 1;
            // Guard against `/*/` counting its `/` twice.
            prev = '\0';
        } else if prev == '*' && c == '/' {
            depth -= 1;
            if depth == 0 {
                out.comments.push(Comment {
                    text,
                    line,
                    end_line: s.line,
                    col,
                });
                return Ok(());
            }
            prev = '\0';
        } else {
            prev = c;
        }
    }
    Err(LexError {
        message: "unterminated block comment".to_string(),
        line,
        col,
    })
}

fn lex_string(
    s: &mut Scanner<'_>,
    out: &mut Lexed,
    line: usize,
    col: usize,
    open: &str,
) -> Result<(), LexError> {
    // The opening `"` is still pending.
    s.bump();
    while let Some(c) = s.bump() {
        match c {
            '\\' => {
                // Skip the escaped character (covers \" and \\).
                s.bump();
            }
            '"' => {
                out.tokens.push(Token {
                    text: open.to_string(),
                    kind: TokenKind::Str,
                    line,
                    col,
                });
                return Ok(());
            }
            _ => {}
        }
    }
    Err(LexError {
        message: "unterminated string literal".to_string(),
        line,
        col,
    })
}

/// Raw string bodies end only at `"` followed by `hashes` `#`s — escapes are
/// inert, which is exactly why rules must not scan their contents.
fn lex_raw_string(
    s: &mut Scanner<'_>,
    out: &mut Lexed,
    line: usize,
    col: usize,
    hashes: usize,
    open: &str,
) -> Result<(), LexError> {
    // The opening `"` is still pending.
    s.bump();
    while let Some(c) = s.bump() {
        if c == '"' {
            let mut seen = 0;
            while seen < hashes && s.peek() == Some('#') {
                s.bump();
                seen += 1;
            }
            if seen == hashes {
                out.tokens.push(Token {
                    text: open.to_string(),
                    kind: TokenKind::Str,
                    line,
                    col,
                });
                return Ok(());
            }
        }
    }
    Err(LexError {
        message: "unterminated raw string literal".to_string(),
        line,
        col,
    })
}

/// `'` starts either a char literal or a lifetime. Heuristic (the same one
/// rustc uses): `'x` followed by another `'` is a char literal; otherwise an
/// ident-like run after `'` is a lifetime.
fn lex_quote(
    s: &mut Scanner<'_>,
    out: &mut Lexed,
    line: usize,
    col: usize,
) -> Result<(), LexError> {
    s.bump(); // the opening '
    match s.peek() {
        Some('\\') => {
            // Escaped char literal: '\n', '\\', '\'', '\x41', '\u{…}'.
            s.bump(); // the backslash
            match s.bump() {
                Some('u') => {
                    while let Some(c) = s.bump() {
                        if c == '}' {
                            break;
                        }
                    }
                }
                Some('x') => {
                    s.bump();
                    s.bump();
                }
                _ => {}
            }
            if s.bump() == Some('\'') {
                out.tokens.push(Token {
                    text: "'".to_string(),
                    kind: TokenKind::Char,
                    line,
                    col,
                });
                Ok(())
            } else {
                Err(LexError {
                    message: "unterminated char literal".to_string(),
                    line,
                    col,
                })
            }
        }
        Some(c) if is_ident_continue(c) => {
            let mut name = String::new();
            while let Some(c) = s.peek() {
                if is_ident_continue(c) {
                    name.push(c);
                    s.bump();
                } else {
                    break;
                }
            }
            if s.peek() == Some('\'') {
                // 'x' — a char literal ('ab' is not valid Rust; the single
                // trailing quote disambiguates).
                s.bump();
                out.tokens.push(Token {
                    text: "'".to_string(),
                    kind: TokenKind::Char,
                    line,
                    col,
                });
            } else {
                out.tokens.push(Token {
                    text: format!("'{name}"),
                    kind: TokenKind::Lifetime,
                    line,
                    col,
                });
            }
            Ok(())
        }
        _ => {
            // A bare `'` (macro land); treat as punctuation.
            push_punct(out, '\'', line, col);
            Ok(())
        }
    }
}

/// `r` / `b` may prefix raw strings, byte strings, or raw identifiers — or
/// just start a plain identifier.
fn lex_maybe_prefixed(
    s: &mut Scanner<'_>,
    out: &mut Lexed,
    line: usize,
    col: usize,
) -> Result<(), LexError> {
    let first = s.bump().expect("caller peeked");
    // Collect what the prefix could be: r, b, br, rb (only r, b, br are
    // real), then decide by the next character.
    let mut prefix = String::new();
    prefix.push(first);
    if first == 'b' && s.peek() == Some('r') {
        prefix.push('r');
        s.bump();
    }
    match s.peek() {
        Some('"') => {
            if prefix.ends_with('r') {
                lex_raw_string(s, out, line, col, 0, &format!("{prefix}\""))
            } else {
                lex_string(s, out, line, col, &format!("{prefix}\""))
            }
        }
        Some('#') if prefix.ends_with('r') => {
            // Raw string with hash fence — or (for plain `r#`) a raw
            // identifier.
            let mut hashes = 0;
            while s.peek() == Some('#') {
                s.bump();
                hashes += 1;
            }
            match s.peek() {
                Some('"') => lex_raw_string(
                    s,
                    out,
                    line,
                    col,
                    hashes,
                    &format!("{}{}\"", prefix, "#".repeat(hashes)),
                ),
                Some(c) if prefix == "r" && hashes == 1 && is_ident_start(c) => {
                    // Raw identifier r#type: lex as the ident it names.
                    lex_ident(s, out, line, col);
                    Ok(())
                }
                _ => Err(LexError {
                    message: "stray raw-string prefix".to_string(),
                    line,
                    col,
                }),
            }
        }
        Some('\'') if prefix == "b" => {
            // Byte char literal b'x'.
            lex_quote(s, out, line, col)?;
            // lex_quote pushed a Char/Lifetime token for the quote; either
            // way the contents were consumed safely.
            Ok(())
        }
        _ => {
            // Just an identifier starting with r/b.
            let mut name = prefix;
            while let Some(c) = s.peek() {
                if is_ident_continue(c) {
                    name.push(c);
                    s.bump();
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                text: name,
                kind: TokenKind::Ident,
                line,
                col,
            });
            Ok(())
        }
    }
}

fn lex_ident(s: &mut Scanner<'_>, out: &mut Lexed, line: usize, col: usize) {
    let mut name = String::new();
    while let Some(c) = s.peek() {
        if is_ident_continue(c) {
            name.push(c);
            s.bump();
        } else {
            break;
        }
    }
    out.tokens.push(Token {
        text: name,
        kind: TokenKind::Ident,
        line,
        col,
    });
}

fn lex_number(s: &mut Scanner<'_>, out: &mut Lexed, line: usize, col: usize) {
    let mut text = String::new();
    // Loose: digits, underscores, alphanumerics (hex, suffixes like u64),
    // and a fractional `.` only when followed by a digit (so `0..10` lexes
    // as number, punct, punct, number).
    while let Some(c) = s.peek() {
        if c.is_alphanumeric() || c == '_' {
            text.push(c);
            s.bump();
        } else if c == '.' {
            let mut lookahead = s.chars.clone();
            lookahead.next();
            match lookahead.peek() {
                Some(d) if d.is_ascii_digit() && !text.contains('.') => {
                    text.push(c);
                    s.bump();
                }
                _ => break,
            }
        } else {
            break;
        }
    }
    out.tokens.push(Token {
        text,
        kind: TokenKind::Number,
        line,
        col,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(source: &str) -> Vec<String> {
        lex(source)
            .expect("lexes")
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn code_in_strings_and_comments_is_not_tokenized() {
        let source = r###"
            let a = "unsafe { panic!() }";
            // unsafe in a line comment
            /* unsafe /* nested */ still comment */
            let b = r#"Ordering::Relaxed "quoted" inside raw"#;
            let c = 'u';
            let d: &'static str = "x";
            real_ident();
        "###;
        let names = idents(source);
        assert!(!names.contains(&"unsafe".to_string()), "{names:?}");
        assert!(!names.contains(&"panic".to_string()));
        assert!(!names.contains(&"Ordering".to_string()));
        assert!(names.contains(&"real_ident".to_string()));
        assert!(names.contains(&"str".to_string()));
    }

    #[test]
    fn comments_carry_their_line_spans() {
        let source = "let x = 1; // trailing\n/* spans\ntwo lines */\nlet y = 2;\n";
        let lexed = lex(source).expect("lexes");
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!((lexed.comments[0].line, lexed.comments[0].end_line), (1, 1));
        assert_eq!((lexed.comments[1].line, lexed.comments[1].end_line), (2, 3));
    }

    #[test]
    fn raw_strings_with_fences_and_escapes() {
        let source = r####"let a = r##"contains "# and \ freely"##; done();"####;
        let names = idents(source);
        assert_eq!(names, vec!["let", "a", "done"]);
    }

    #[test]
    fn byte_and_raw_prefixes() {
        let source = "let a = b\"bytes\"; let b = br#\"raw bytes\"#; let c = b'x'; r#type();";
        let names = idents(source);
        assert!(names.contains(&"type".to_string()));
        assert!(!names.contains(&"bytes".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'y' }").expect("lexes");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .collect();
        assert_eq!(chars.len(), 1);
    }

    #[test]
    fn positions_are_one_based_lines_and_columns() {
        let lexed = lex("ab cd\n  ef").expect("lexes");
        let positions: Vec<_> = lexed.tokens.iter().map(|t| (t.line, t.col)).collect();
        assert_eq!(positions, vec![(1, 1), (1, 4), (2, 3)]);
    }

    #[test]
    fn ranges_do_not_glue_into_floats() {
        let lexed = lex("for i in 0..10 { x(1.5); }").expect("lexes");
        let numbers: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(numbers, vec!["0", "10", "1.5"]);
    }

    #[test]
    fn unterminated_constructs_error_instead_of_hanging() {
        assert!(lex("let x = \"open").is_err());
        assert!(lex("/* never closed").is_err());
        assert!(lex("let r = r#\"open").is_err());
    }
}
