//! Workspace file discovery and the per-file view the rules operate on.

use crate::lexer::{lex, Comment, LexError, Token, TokenKind};
use std::path::{Path, PathBuf};

/// A lexed workspace source file, with the derived per-line views the rules
/// need: which lines are comments (and what they say), and which lines
/// belong to `#[cfg(test)]` items.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable across hosts, and
    /// the form used in `UNSAFE_AUDIT.md` and the allowlist).
    pub rel_path: String,
    /// The file's lines (for snippet matching in allowlists).
    pub lines: Vec<String>,
    /// All non-comment tokens, in order.
    pub tokens: Vec<Token>,
    /// All comments, in order.
    pub comments: Vec<Comment>,
    /// `test_lines[line - 1]` is true when the line sits inside a
    /// `#[cfg(test)]` item (or the whole file is test/bench/example code).
    test_lines: Vec<bool>,
    /// `comment_lines[line - 1]` holds the concatenated text of every
    /// comment covering that line, if any.
    comment_lines: Vec<Option<String>>,
    /// `code_lines[line - 1]` is true when the line carries at least one
    /// non-comment token.
    code_lines: Vec<bool>,
}

impl SourceFile {
    /// Lexes `source` into a [`SourceFile`]. `all_test` marks every line as
    /// test code (integration tests, benches, examples).
    pub fn parse(rel_path: String, source: &str, all_test: bool) -> Result<SourceFile, LexError> {
        let lexed = lex(source)?;
        let lines: Vec<String> = source.lines().map(str::to_string).collect();
        let num_lines = lines.len().max(1);
        let mut comment_lines: Vec<Option<String>> = vec![None; num_lines];
        for comment in &lexed.comments {
            for line in comment.line..=comment.end_line.min(num_lines) {
                match &mut comment_lines[line - 1] {
                    Some(text) => {
                        text.push('\n');
                        text.push_str(&comment.text);
                    }
                    slot => *slot = Some(comment.text.clone()),
                }
            }
        }
        let test_lines = if all_test {
            vec![true; num_lines]
        } else {
            cfg_test_lines(&lexed.tokens, num_lines)
        };
        let mut code_lines = vec![false; num_lines];
        for token in &lexed.tokens {
            if token.line <= num_lines {
                code_lines[token.line - 1] = true;
            }
        }
        Ok(SourceFile {
            rel_path,
            lines,
            tokens: lexed.tokens,
            comments: lexed.comments,
            test_lines,
            comment_lines,
            code_lines,
        })
    }

    /// Whether 1-based `line` belongs to test code.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines
            .get(line.wrapping_sub(1))
            .copied()
            .unwrap_or(false)
    }

    /// The text of the comment(s) covering 1-based `line`, if any.
    pub fn comment_on(&self, line: usize) -> Option<&str> {
        self.comment_lines
            .get(line.wrapping_sub(1))
            .and_then(|slot| slot.as_deref())
    }

    /// The source text of 1-based `line` (empty for out-of-range).
    pub fn line_text(&self, line: usize) -> &str {
        self.lines
            .get(line.wrapping_sub(1))
            .map(String::as_str)
            .unwrap_or("")
    }

    /// Whether a justification `marker` (e.g. `"SAFETY:"`) is attached to the
    /// site on 1-based `line`: either a comment on the line itself (trailing,
    /// or mid-statement directly above the flagged expression) or in the
    /// contiguous comment block ending on the previous line.
    pub fn has_marker(&self, line: usize, marker: &str) -> bool {
        if self
            .comment_on(line)
            .is_some_and(|text| text.contains(marker))
        {
            return true;
        }
        let mut cursor = line;
        while cursor > 1 {
            cursor -= 1;
            let has_code = self.code_lines.get(cursor - 1).copied().unwrap_or(false);
            match self.comment_on(cursor) {
                // Only comment-only lines form the attached block: a comment
                // trailing a previous *code* line belongs to that line.
                Some(text) if !has_code => {
                    if text.contains(marker) {
                        return true;
                    }
                }
                _ => {
                    // Blank lines do not break a comment block; code does.
                    if !has_code && self.line_text(cursor).trim().is_empty() {
                        continue;
                    }
                    return false;
                }
            }
        }
        false
    }
}

/// Derives which lines sit inside `#[cfg(test)]` items by brace-matching the
/// block that follows each such attribute.
fn cfg_test_lines(tokens: &[Token], num_lines: usize) -> Vec<bool> {
    let mut test_lines = vec![false; num_lines];
    let mut i = 0;
    while i < tokens.len() {
        if let Some(after_attr) = match_cfg_test_attr(tokens, i) {
            // Find the item's opening brace (a `#[cfg(test)] mod m;` without
            // a body would hit `;` first — mark just the attribute lines).
            let mut j = after_attr;
            let mut open = None;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "{" => {
                        open = Some(j);
                        break;
                    }
                    ";" => break,
                    _ => j += 1,
                }
            }
            let end_line = match open {
                Some(open) => {
                    let mut depth = 0usize;
                    let mut k = open;
                    let mut end = tokens[open].line;
                    while k < tokens.len() {
                        match tokens[k].text.as_str() {
                            "{" => depth += 1,
                            "}" => {
                                depth -= 1;
                                if depth == 0 {
                                    end = tokens[k].line;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k = k.saturating_add(1);
                    }
                    if k >= tokens.len() {
                        // Unbalanced braces: conservatively run to EOF.
                        end = num_lines;
                    }
                    end
                }
                None => tokens.get(j).map_or(num_lines, |t| t.line),
            };
            for line in tokens[i].line..=end_line.min(num_lines) {
                test_lines[line - 1] = true;
            }
            i = after_attr;
        } else {
            i += 1;
        }
    }
    test_lines
}

/// If tokens at `i` start a `#[cfg(…test…)]` attribute, returns the index
/// just past its closing `]`.
fn match_cfg_test_attr(tokens: &[Token], i: usize) -> Option<usize> {
    if tokens.get(i)?.text != "#" || tokens.get(i + 1)?.text != "[" {
        return None;
    }
    if tokens.get(i + 2)?.text != "cfg" || tokens.get(i + 3)?.text != "(" {
        return None;
    }
    // Scan to the matching `]`, looking for a `test` ident anywhere inside
    // (covers `cfg(test)` and `cfg(any(test, …))`).
    let mut depth = 1usize; // the `[`
    let mut j = i + 3;
    let mut saw_test = false;
    while depth > 0 {
        j += 1;
        let token = tokens.get(j)?;
        match token.text.as_str() {
            "[" => depth += 1,
            "]" => depth -= 1,
            "test" if token.kind == TokenKind::Ident => saw_test = true,
            _ => {}
        }
    }
    saw_test.then_some(j + 1)
}

/// Recursively collects workspace `.rs` files under `root`, skipping build
/// output, VCS internals, and this crate's lint-rule fixtures (which contain
/// seeded violations by design).
pub fn discover_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if name == "target" || name == ".git" || name == "fixtures" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Converts an absolute path under `root` to the workspace-relative,
/// `/`-separated form used in diagnostics and inventories.
pub fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Whether a workspace-relative path is integration-test, bench, or example
/// code (every line counts as test code for the panic-freedom and atomics
/// rules).
pub fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.starts_with("examples/")
        || rel.contains("/examples/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(source: &str) -> SourceFile {
        SourceFile::parse("test.rs".to_string(), source, false).expect("parses")
    }

    #[test]
    fn cfg_test_mod_lines_are_marked() {
        let f = file(
            "pub fn library() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn helper() {}\n\
             }\n\
             pub fn more_library() {}\n",
        );
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn cfg_any_including_test_is_marked() {
        let f = file("#[cfg(any(test, feature = \"x\"))]\nmod helpers {\n fn h() {}\n}\n");
        assert!(f.is_test_line(3));
    }

    #[test]
    fn non_test_cfg_is_not_marked() {
        let f = file("#[cfg(unix)]\nmod unix_only {\n fn h() {}\n}\n");
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn markers_attach_through_comment_blocks_and_trailing_comments() {
        let f = file(
            "// SAFETY: the pointer is valid because\n\
             // the latch blocks until completion.\n\
             fn site_below_block() {}\n\
             fn trailing() {} // SAFETY: inline case\n\
             fn bare() {}\n",
        );
        assert!(f.has_marker(3, "SAFETY:"));
        assert!(f.has_marker(4, "SAFETY:"));
        assert!(!f.has_marker(5, "SAFETY:"));
    }

    #[test]
    fn markers_do_not_leak_across_code_lines() {
        let f = file(
            "// SAFETY: belongs to the next line only\n\
             fn documented() {}\n\
             fn undocumented() {}\n",
        );
        assert!(f.has_marker(2, "SAFETY:"));
        assert!(!f.has_marker(3, "SAFETY:"));
    }

    #[test]
    fn mid_statement_marker_on_the_line_above_attaches() {
        let f = file(
            "let i = cursor\n\
             // ORDERING: claim index only; results merge under the latch.\n\
             .fetch_add(1, Ordering::Relaxed);\n",
        );
        assert!(f.has_marker(3, "ORDERING:"));
    }
}
