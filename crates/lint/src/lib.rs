//! `bqo-lint`: the workspace's static-analysis pass.
//!
//! Industrial optimizers ship invariant tooling alongside the engine; this
//! crate is that tooling for the BQO reproduction. It walks every workspace
//! `.rs` file with a small hand-rolled lexer (std-only — the build
//! environment has no registry access) and enforces project rules with
//! rustc-style `file:line:col` diagnostics, exiting non-zero on findings so
//! it gates CI (`cargo run -p bqo-lint`) and the tier-1 suite
//! (`tests/tests/lint_clean.rs`).
//!
//! The rules:
//!
//! * **L001** — every `unsafe` site carries a `// SAFETY:` justification and
//!   is inventoried in `UNSAFE_AUDIT.md` (checked both directions, so the
//!   audit file can never drift from the code).
//! * **L002** — no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in
//!   non-test library code of `exec`/`format`/`core`/`storage`; deliberate
//!   exceptions live in `crates/lint/panic_allowlist.txt` with per-entry
//!   reasons (unused entries are themselves findings).
//! * **L003** — every atomic-ordering use (`Ordering::Relaxed` and friends)
//!   in library code carries a `// ORDERING:` justification — a reviewable
//!   poor-man's race audit over the pool/cancel/cache/server concurrency
//!   surface.
//! * **L004** — no bare `as` numeric casts in the probe-kernel and format
//!   hot paths without a `// CAST-OK:` marker (lossless conversions should
//!   use `From`/`try_from` instead).
//! * **L005** — every `tests/tests/*.rs` suite is referenced by name in
//!   `.github/workflows/ci.yml`: no silently unrun suites.
//! * **L006** — the lint wall stands: every workspace crate's `lib.rs`
//!   carries `#![deny(unsafe_op_in_unsafe_fn)]` and
//!   `#![warn(missing_debug_implementations)]`, plus `#![warn(missing_docs)]`
//!   on `bqo-bitvector` and `bqo-plan`.
//!
//! Justification markers are ordinary comments attached to the flagged line:
//! trailing on the same line, mid-statement on the line directly above, or
//! in the contiguous comment block ending on the previous line.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;
pub mod source;

use source::{discover_rs_files, is_test_path, rel_path, SourceFile};
use std::fmt;
use std::path::{Path, PathBuf};

/// Identifies which rule produced a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `unsafe` sites need `// SAFETY:` comments and an `UNSAFE_AUDIT.md`
    /// entry.
    L001,
    /// Panic-freedom in the `exec`/`format`/`core`/`storage` library code.
    L002,
    /// Atomic orderings need `// ORDERING:` justifications.
    L003,
    /// Bare `as` numeric casts in hot paths need `// CAST-OK:` markers.
    L004,
    /// Every integration-test suite must be referenced in the CI workflow.
    L005,
    /// The strict lint wall must be present in every crate root.
    L006,
    /// The file could not be lexed (unterminated literal or comment).
    Lex,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rule::Lex => write!(f, "lex"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// One finding, pointing at a workspace-relative `path:line:col`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: Rule,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line (1 for file-level findings).
    pub line: usize,
    /// 1-based column (1 for file/line-level findings).
    pub col: usize,
    /// What is wrong and how to fix it.
    pub message: String,
    /// Optional extra context lines (rendered as `note:`s).
    pub notes: Vec<String>,
}

impl Diagnostic {
    fn new(rule: Rule, path: &str, line: usize, col: usize, message: String) -> Self {
        Diagnostic {
            rule,
            path: path.to_string(),
            line,
            col,
            message,
            notes: Vec::new(),
        }
    }

    fn with_note(mut self, note: String) -> Self {
        self.notes.push(note);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error[{}]: {}", self.rule, self.message)?;
        write!(f, "  --> {}:{}:{}", self.path, self.line, self.col)?;
        for note in &self.notes {
            write!(f, "\n  note: {note}")?;
        }
        Ok(())
    }
}

/// What the engine lints and where the project's rule inputs live. All paths
/// are workspace-relative; [`Config::workspace`] builds the project's
/// canonical configuration, and fixture tests build scoped ones.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root (everything else is relative to it).
    pub root: PathBuf,
    /// The `UNSAFE_AUDIT.md` inventory checked by L001.
    pub audit_file: String,
    /// The L002 allowlist file.
    pub allowlist_file: String,
    /// Directory prefixes whose non-test code must be panic-free (L002).
    pub panic_free_prefixes: Vec<String>,
    /// Files whose bare `as` numeric casts need `// CAST-OK:` (L004).
    pub cast_audited_files: Vec<String>,
    /// The CI workflow every test suite must be referenced in (L005).
    pub ci_file: String,
    /// Directory holding the integration-test suites (L005).
    pub suites_dir: String,
    /// Crate roots that must carry the lint wall (L006): `(lib.rs path,
    /// required inner attributes)`.
    pub wall: Vec<(String, Vec<&'static str>)>,
    /// Path prefixes excluded from marker rules entirely (vendored shims:
    /// they model external crates.io APIs, not project code).
    pub vendored_prefixes: Vec<String>,
}

/// The two attributes every workspace crate root must carry.
pub const WALL_BASE: [&str; 2] = [
    "#![deny(unsafe_op_in_unsafe_fn)]",
    "#![warn(missing_debug_implementations)]",
];

/// The additional attribute required on the fully-documented crates.
pub const WALL_DOCS: &str = "#![warn(missing_docs)]";

impl Config {
    /// The project's canonical configuration rooted at `root`.
    pub fn workspace(root: impl Into<PathBuf>) -> Config {
        let base: Vec<&'static str> = WALL_BASE.to_vec();
        let with_docs: Vec<&'static str> = WALL_BASE.iter().copied().chain([WALL_DOCS]).collect();
        let wall = [
            ("crates/bitvector/src/lib.rs", with_docs.clone()),
            ("crates/plan/src/lib.rs", with_docs),
            ("crates/storage/src/lib.rs", base.clone()),
            ("crates/format/src/lib.rs", base.clone()),
            ("crates/sql/src/lib.rs", base.clone()),
            ("crates/optimizer/src/lib.rs", base.clone()),
            ("crates/exec/src/lib.rs", base.clone()),
            ("crates/workloads/src/lib.rs", base.clone()),
            ("crates/core/src/lib.rs", base.clone()),
            ("crates/bench/src/lib.rs", base.clone()),
            ("crates/lint/src/lib.rs", base.clone()),
            ("tests/src/lib.rs", base),
        ]
        .into_iter()
        .map(|(path, attrs)| (path.to_string(), attrs))
        .collect();
        Config {
            root: root.into(),
            audit_file: "UNSAFE_AUDIT.md".to_string(),
            allowlist_file: "crates/lint/panic_allowlist.txt".to_string(),
            panic_free_prefixes: vec![
                "crates/exec/src/".to_string(),
                "crates/format/src/".to_string(),
                "crates/core/src/".to_string(),
                "crates/storage/src/".to_string(),
            ],
            cast_audited_files: vec![
                "crates/exec/src/kernels.rs".to_string(),
                "crates/bitvector/src/bitmap.rs".to_string(),
                "crates/bitvector/src/blocked.rs".to_string(),
                "crates/bitvector/src/bloom.rs".to_string(),
                "crates/bitvector/src/exact.rs".to_string(),
                "crates/bitvector/src/hash.rs".to_string(),
                "crates/format/src/codec.rs".to_string(),
                "crates/format/src/reader.rs".to_string(),
                "crates/format/src/writer.rs".to_string(),
                "crates/format/src/xxhash.rs".to_string(),
            ],
            ci_file: ".github/workflows/ci.yml".to_string(),
            suites_dir: "tests/tests".to_string(),
            wall,
            vendored_prefixes: vec!["crates/shims/".to_string()],
        }
    }

    fn is_vendored(&self, rel: &str) -> bool {
        self.vendored_prefixes.iter().any(|p| rel.starts_with(p))
    }
}

/// Runs every rule over the workspace described by `config` and returns the
/// findings, sorted by path and position.
pub fn run(config: &Config) -> std::io::Result<Vec<Diagnostic>> {
    let mut diagnostics = Vec::new();
    let mut files = Vec::new();
    for path in discover_rs_files(&config.root)? {
        let rel = rel_path(&config.root, &path);
        if config.is_vendored(&rel) {
            continue;
        }
        let source = std::fs::read_to_string(&path)?;
        match SourceFile::parse(rel.clone(), &source, is_test_path(&rel)) {
            Ok(file) => files.push(file),
            Err(e) => diagnostics.push(Diagnostic::new(Rule::Lex, &rel, e.line, e.col, e.message)),
        }
    }
    diagnostics.extend(rules::safety::check(config, &files)?);
    diagnostics.extend(rules::panics::check(config, &files)?);
    diagnostics.extend(rules::atomics::check(&files));
    diagnostics.extend(rules::casts::check(config, &files));
    diagnostics.extend(rules::ci_coverage::check(config)?);
    diagnostics.extend(rules::wall::check(config, &files));
    diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(diagnostics)
}

/// Locates the workspace root: an explicit argument wins, then the manifest
/// directory's grandparent (`crates/lint` → workspace), then the current
/// directory. Verified by the presence of the root `Cargo.toml`.
pub fn find_workspace_root(explicit: Option<&Path>) -> Option<PathBuf> {
    let mut candidates: Vec<PathBuf> = Vec::new();
    if let Some(path) = explicit {
        candidates.push(path.to_path_buf());
    }
    if let Some(manifest_dir) = std::env::var_os("CARGO_MANIFEST_DIR") {
        let manifest_dir = PathBuf::from(manifest_dir);
        if let Some(root) = manifest_dir.ancestors().nth(2) {
            candidates.push(root.to_path_buf());
        }
    }
    if let Ok(cwd) = std::env::current_dir() {
        candidates.push(cwd);
    }
    candidates
        .into_iter()
        .find(|dir| dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir())
}
