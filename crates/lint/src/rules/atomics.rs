//! **L003** — every atomic-ordering use in library code carries a
//! `// ORDERING:` justification. The comment must say why the chosen
//! ordering is sufficient (what the operation synchronizes with, or why it
//! needs no synchronization at all), turning every atomic site into a
//! reviewable race-audit entry.

use crate::source::SourceFile;
use crate::{Diagnostic, Rule};

/// The marker comment an atomic-ordering site must carry.
pub const MARKER: &str = "ORDERING:";

/// The `std::sync::atomic::Ordering` variants. `std::cmp::Ordering`'s
/// `Less`/`Equal`/`Greater` never match, so comparator code is untouched.
const VARIANTS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Runs the rule over the parsed workspace.
pub fn check(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    for file in files {
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            // Match `Ordering :: <variant>` (`::` lexes as two `:` puncts).
            if tokens[i].text != "Ordering" {
                continue;
            }
            let Some(variant) = tokens.get(i + 3) else {
                continue;
            };
            if tokens[i + 1].text != ":"
                || tokens[i + 2].text != ":"
                || !VARIANTS.contains(&variant.text.as_str())
            {
                continue;
            }
            if file.is_test_line(variant.line) {
                continue;
            }
            if file.has_marker(variant.line, MARKER) {
                continue;
            }
            diagnostics.push(Diagnostic::new(
                Rule::L003,
                &file.rel_path,
                variant.line,
                variant.col,
                format!(
                    "`Ordering::{}` without a `// {MARKER}` justification; state what \
                     this synchronizes with (or why it need not)",
                    variant.text
                ),
            ));
        }
    }
    diagnostics
}
