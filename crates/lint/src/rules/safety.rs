//! **L001** — every `unsafe` site carries a `// SAFETY:` comment and an
//! `UNSAFE_AUDIT.md` entry; every audit entry points at a live site.

use crate::source::SourceFile;
use crate::{Config, Diagnostic, Rule};
use std::collections::BTreeSet;

/// The marker comment an `unsafe` site must carry.
pub const MARKER: &str = "SAFETY:";

/// Runs the rule over the parsed workspace.
pub fn check(config: &Config, files: &[SourceFile]) -> std::io::Result<Vec<Diagnostic>> {
    let mut diagnostics = Vec::new();
    // One site per (path, line): `unsafe impl … { unsafe fn … }` on a single
    // line is one audit entry, not two.
    let mut sites: BTreeSet<(String, usize)> = BTreeSet::new();
    for file in files {
        let mut flagged_lines = BTreeSet::new();
        for token in &file.tokens {
            if token.text != "unsafe" {
                continue;
            }
            sites.insert((file.rel_path.clone(), token.line));
            if !flagged_lines.insert(token.line) {
                continue;
            }
            if !file.has_marker(token.line, MARKER) {
                diagnostics.push(Diagnostic::new(
                    Rule::L001,
                    &file.rel_path,
                    token.line,
                    token.col,
                    format!(
                        "`unsafe` without a `// {MARKER}` comment; justify why the \
                         invariants hold"
                    ),
                ));
            }
        }
    }

    let audit_path = config.root.join(&config.audit_file);
    let audit = match std::fs::read_to_string(&audit_path) {
        Ok(text) => text,
        Err(_) => {
            let mut d = Diagnostic::new(
                Rule::L001,
                &config.audit_file,
                1,
                1,
                format!("missing `{}` unsafe-site inventory", config.audit_file),
            );
            if !sites.is_empty() {
                d = d.with_note(format!(
                    "{} unsafe site(s) in the workspace need entries",
                    sites.len()
                ));
            }
            diagnostics.push(d);
            return Ok(diagnostics);
        }
    };

    let entries = parse_audit_entries(&audit);
    for (path, line) in &sites {
        if !entries
            .iter()
            .any(|e| e.site.0 == *path && e.site.1 == *line)
        {
            diagnostics.push(
                Diagnostic::new(
                    Rule::L001,
                    path,
                    *line,
                    1,
                    format!(
                        "unsafe site not listed in `{}`; add a `{path}:{line}` entry",
                        config.audit_file
                    ),
                )
                .with_note("the audit inventory must name every unsafe site".to_string()),
            );
        }
    }
    for entry in &entries {
        let (path, line) = &entry.site;
        if !sites.contains(&(path.clone(), *line)) {
            diagnostics.push(
                Diagnostic::new(
                    Rule::L001,
                    &config.audit_file,
                    entry.audit_line,
                    1,
                    format!(
                        "stale audit entry `{path}:{line}`: no unsafe site there; \
                         update the inventory"
                    ),
                )
                .with_note(
                    "entries use exact line numbers so the audit is re-reviewed when \
                     code moves"
                        .to_string(),
                ),
            );
        }
    }
    Ok(diagnostics)
}

struct AuditEntry {
    /// `(workspace-relative path, line)` named by the entry.
    site: (String, usize),
    /// Where in the audit file the entry appears.
    audit_line: usize,
}

/// Extracts every backtick-quoted `` `path:line` `` reference from the audit
/// markdown.
fn parse_audit_entries(audit: &str) -> Vec<AuditEntry> {
    let mut entries = Vec::new();
    for (idx, line) in audit.lines().enumerate() {
        let mut rest = line;
        while let Some(open) = rest.find('`') {
            let after = &rest[open + 1..];
            let Some(close) = after.find('`') else { break };
            let code = &after[..close];
            if let Some((path, line_no)) = code.rsplit_once(':') {
                if let Ok(line_no) = line_no.parse::<usize>() {
                    if path.ends_with(".rs") {
                        entries.push(AuditEntry {
                            site: (path.to_string(), line_no),
                            audit_line: idx + 1,
                        });
                    }
                }
            }
            rest = &after[close + 1..];
        }
    }
    entries
}
