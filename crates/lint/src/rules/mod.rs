//! The individual lint rules. Each module exposes a `check` function that
//! inspects the parsed workspace and returns [`crate::Diagnostic`]s.

pub mod atomics;
pub mod casts;
pub mod ci_coverage;
pub mod panics;
pub mod safety;
pub mod wall;
