//! **L004** — no bare `as` numeric casts in the kernel/format hot paths.
//! Silent truncation and sign-change bugs hide in `as`; lossless conversions
//! should use `From`/`try_from`, and genuinely truncating casts must carry a
//! `// CAST-OK:` marker explaining why the narrowing is safe.

use crate::source::SourceFile;
use crate::{Config, Diagnostic, Rule};

/// The marker comment a deliberate numeric cast must carry.
pub const MARKER: &str = "CAST-OK:";

/// Primitive numeric types: `expr as <one of these>` is a flagged cast.
const NUMERIC_TYPES: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// Runs the rule over the parsed workspace.
pub fn check(config: &Config, files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    for file in files {
        if !config.cast_audited_files.contains(&file.rel_path) {
            continue;
        }
        for (i, token) in file.tokens.iter().enumerate() {
            if token.text != "as" {
                continue;
            }
            let Some(target) = file.tokens.get(i + 1) else {
                continue;
            };
            if !NUMERIC_TYPES.contains(&target.text.as_str()) {
                continue;
            }
            // `use x as u32`-style renames don't exist for primitives, and
            // `as` only appears as the cast operator or in imports; an import
            // is preceded by an ident path, but so is a cast, so rely on the
            // target-type check alone (imports of primitive names are not a
            // thing in this codebase).
            if file.is_test_line(token.line) {
                continue;
            }
            if file.has_marker(token.line, MARKER) {
                continue;
            }
            diagnostics.push(
                Diagnostic::new(
                    Rule::L004,
                    &file.rel_path,
                    token.line,
                    token.col,
                    format!(
                        "bare `as {}` cast in a hot path; use `From`/`try_from`, or \
                         mark the narrowing `// {MARKER}` with a reason",
                        target.text
                    ),
                )
                .with_note(format!("in: {}", file.line_text(token.line).trim())),
            );
        }
    }
    diagnostics
}
