//! **L005** — every integration-test suite under `tests/tests/` must be
//! referenced by name in the CI workflow, so a suite can never silently drop
//! out of the gate.

use crate::{Config, Diagnostic, Rule};

/// Runs the rule (purely file-system based; no lexing needed).
pub fn check(config: &Config) -> std::io::Result<Vec<Diagnostic>> {
    let mut diagnostics = Vec::new();
    let ci_path = config.root.join(&config.ci_file);
    let ci_text = match std::fs::read_to_string(&ci_path) {
        Ok(text) => text,
        Err(_) => {
            return Ok(vec![Diagnostic::new(
                Rule::L005,
                &config.ci_file,
                1,
                1,
                format!("missing CI workflow `{}`", config.ci_file),
            )]);
        }
    };

    let suites_dir = config.root.join(&config.suites_dir);
    let mut suites = Vec::new();
    if let Ok(entries) = std::fs::read_dir(&suites_dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy().into_owned();
            if let Some(stem) = name.strip_suffix(".rs") {
                suites.push(stem.to_string());
            }
        }
    }
    suites.sort();

    for stem in suites {
        if !ci_text.contains(&stem) {
            diagnostics.push(
                Diagnostic::new(
                    Rule::L005,
                    &format!("{}/{stem}.rs", config.suites_dir),
                    1,
                    1,
                    format!(
                        "test suite `{stem}` is not referenced in `{}`; list it in the \
                         suite enumeration so CI provably runs it",
                        config.ci_file
                    ),
                )
                .with_note(
                    "reference the suite by name (e.g. `cargo test --test <name>` or a \
                     suites list)"
                        .to_string(),
                ),
            );
        }
    }
    Ok(diagnostics)
}
