//! **L006** — the strict lint wall stands. Every workspace crate root must
//! carry the wall's inner attributes, and every crate root must be covered
//! by the wall configuration (so a new crate can't dodge it by omission).

use crate::source::SourceFile;
use crate::{Config, Diagnostic, Rule};

/// Runs the rule over the parsed workspace.
pub fn check(config: &Config, files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    for (lib_path, attrs) in &config.wall {
        let Some(file) = files.iter().find(|f| &f.rel_path == lib_path) else {
            diagnostics.push(Diagnostic::new(
                Rule::L006,
                lib_path,
                1,
                1,
                "crate root named in the lint-wall config does not exist".to_string(),
            ));
            continue;
        };
        for attr in attrs {
            if !file.lines.iter().any(|l| l.trim() == *attr) {
                diagnostics.push(Diagnostic::new(
                    Rule::L006,
                    lib_path,
                    1,
                    1,
                    format!("crate root is missing the lint-wall attribute `{attr}`"),
                ));
            }
        }
    }

    // Coverage check: any crate root not named in the wall config is a
    // finding — new crates must opt in to the wall explicitly.
    for file in files {
        let is_crate_root = file.rel_path.ends_with("/src/lib.rs");
        if !is_crate_root {
            continue;
        }
        if !config.wall.iter().any(|(p, _)| p == &file.rel_path) {
            diagnostics.push(Diagnostic::new(
                Rule::L006,
                &file.rel_path,
                1,
                1,
                "crate root is not covered by the lint-wall configuration; add it to \
                 `Config::workspace`"
                    .to_string(),
            ));
        }
    }
    diagnostics
}
