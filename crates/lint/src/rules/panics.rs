//! **L002** — panic-freedom in the serving-path library code. The engine's
//! contract is that malformed inputs surface as `Err`, not process aborts;
//! deliberate exceptions live in an allowlist with per-entry reasons.

use crate::source::SourceFile;
use crate::{Config, Diagnostic, Rule};

/// Macros that abort the process (flagged when followed by `!`).
const PANIC_MACROS: [&str; 4] = ["panic", "todo", "unimplemented", "unreachable"];
/// Methods that abort on the error/none path (flagged after `.` or `::`).
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

/// Runs the rule over the parsed workspace.
pub fn check(config: &Config, files: &[SourceFile]) -> std::io::Result<Vec<Diagnostic>> {
    let allowlist_path = config.root.join(&config.allowlist_file);
    let mut allowlist = match std::fs::read_to_string(&allowlist_path) {
        Ok(text) => parse_allowlist(&text),
        Err(_) => Vec::new(),
    };

    let mut diagnostics = Vec::new();
    for file in files {
        if !config
            .panic_free_prefixes
            .iter()
            .any(|p| file.rel_path.starts_with(p))
        {
            continue;
        }
        for (i, token) in file.tokens.iter().enumerate() {
            let name = token.text.as_str();
            let is_macro = PANIC_MACROS.contains(&name)
                && file.tokens.get(i + 1).is_some_and(|t| t.text == "!");
            let is_method = PANIC_METHODS.contains(&name)
                && i > 0
                && matches!(file.tokens[i - 1].text.as_str(), "." | ":");
            if !(is_macro || is_method) {
                continue;
            }
            if file.is_test_line(token.line) {
                continue;
            }
            let line_text = file.line_text(token.line);
            if let Some(entry) = allowlist.iter_mut().find(|e| {
                e.path == file.rel_path && !e.snippet.is_empty() && line_text.contains(&e.snippet)
            }) {
                entry.used = true;
                continue;
            }
            diagnostics.push(
                Diagnostic::new(
                    Rule::L002,
                    &file.rel_path,
                    token.line,
                    token.col,
                    format!(
                        "`{name}` can abort the serving path; return an error instead \
                         (or allowlist it with a reason in `{}`)",
                        config.allowlist_file
                    ),
                )
                .with_note(format!("in: {}", line_text.trim())),
            );
        }
    }

    // Unused entries are findings too: the allowlist must shrink as code
    // improves, never accrete dead exemptions.
    for entry in &allowlist {
        if !entry.used {
            diagnostics.push(Diagnostic::new(
                Rule::L002,
                &config.allowlist_file,
                entry.list_line,
                1,
                format!(
                    "unused allowlist entry for `{}` (snippet `{}`); remove it",
                    entry.path, entry.snippet
                ),
            ));
        }
    }
    Ok(diagnostics)
}

struct AllowEntry {
    path: String,
    snippet: String,
    list_line: usize,
    used: bool,
}

/// Parses `path :: snippet :: reason` lines; `#` starts a comment. An entry
/// exempts every flagged call in `path` whose source line contains `snippet`,
/// and must carry a non-empty reason to count at all.
fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    let mut entries = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, " :: ");
        let (Some(path), Some(snippet), Some(reason)) = (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        if reason.trim().is_empty() {
            continue;
        }
        entries.push(AllowEntry {
            path: path.trim().to_string(),
            snippet: snippet.trim().to_string(),
            list_line: idx + 1,
            used: false,
        });
    }
    entries
}
