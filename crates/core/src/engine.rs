//! The serving-grade `Engine` facade: a cheaply shareable handle over the
//! catalog, a selectivity-aware plan cache, owned prepared statements and
//! lightweight execution sessions.
//!
//! ```text
//! Engine (Arc-internal, Clone + Send + Sync)
//!   ├── prepare(spec, choice)          -> PreparedStatement   (owned, 'static)
//!   ├── bind(spec, params, choice)     -> PreparedStatement   (via PlanCache)
//!   └── session() -> Session ── execute(&stmt, RunOptions) -> StatementOutput
//! ```

use crate::cache::{CacheStats, CacheStatus, PlanCache};
use crate::{BqoError, OptimizerChoice};
use bqo_exec::{
    Batch, BoundPlan, CancelToken, ExecConfig, ExecutionMetrics, Executor, QueryResult, WorkerPool,
};
use bqo_optimizer::{BaselineOptimizer, BqoOptimizer, Optimizer};
use bqo_plan::{CostModel, CoutBreakdown, JoinGraph, Params, PhysicalPlan, QuerySpec};
use bqo_storage::{Catalog, ForeignKey, Table};
use std::sync::{Arc, OnceLock};

/// Minimum effective parallelism the engine's worker pool is sized for when
/// the builder does not pin an explicit [`EngineBuilder::worker_threads`]:
/// the pool gets `max(default num_threads, available_parallelism, 4) - 1`
/// helper threads, so per-session `num_threads` overrides up to at least 4
/// (and up to the hardware width) are served by parked pool workers instead
/// of the scoped-spawn fallback.
const MIN_DEFAULT_PARALLELISM: usize = 4;

/// Default helper-worker count for an engine pool (see
/// [`MIN_DEFAULT_PARALLELISM`]). The calling thread always participates as
/// worker 0, hence the `- 1`.
fn default_pool_workers(config: ExecConfig) -> usize {
    let hardware = std::thread::available_parallelism().map_or(1, |p| p.get());
    config
        .num_threads
        .max(hardware)
        .max(MIN_DEFAULT_PARALLELISM)
        - 1
}

#[derive(Debug)]
struct EngineInner {
    catalog: Catalog,
    exec_config: ExecConfig,
    /// Snapshot of `catalog.version()` at build time; folded into every
    /// plan-cache key so engines over different catalog generations sharing
    /// one [`PlanCache`] never serve each other's plans.
    catalog_version: u64,
    /// Snapshot of `catalog.schema_tag()` at build time: a content hash that
    /// keeps *diverged* clones with coinciding mutation counts apart in the
    /// cache key (the version alone is a bare count).
    catalog_tag: u64,
    cache: PlanCache,
    /// Helper-thread count of the engine-owned worker pool.
    pool_workers: usize,
    /// The persistent worker pool serving every parallel section of every
    /// session (and every `Server` dispatcher) of this engine. Spawned
    /// lazily on the first parallel run, so serial-only engines never start
    /// threads; shut down (threads joined) when the engine's last clone
    /// drops.
    pool: OnceLock<WorkerPool>,
}

impl Default for EngineInner {
    fn default() -> Self {
        let exec_config = ExecConfig::default();
        EngineInner {
            catalog: Catalog::default(),
            exec_config,
            catalog_version: 0,
            catalog_tag: 0,
            cache: PlanCache::default(),
            pool_workers: default_pool_workers(exec_config),
            pool: OnceLock::new(),
        }
    }
}

/// The unified query engine: a catalog, a default execution configuration and
/// a plan cache behind one `Arc` — cloning an `Engine` is a reference-count
/// bump, and every clone (and every thread) observes the same cache.
///
/// Construct one with [`Engine::builder`] (or [`Engine::from_catalog`] when a
/// workload generator already produced the catalog), then turn a
/// [`QuerySpec`] into an owned [`PreparedStatement`] with [`Engine::prepare`]
/// (literal queries) or [`Engine::bind`] (parameterized queries), and execute
/// it through a [`Session`]:
///
/// ```
/// use bqo_core::{Engine, OptimizerChoice, RunOptions};
/// use bqo_core::workloads::{star, Scale};
///
/// let workload = star::generate(Scale(0.02), 3, 1, 42);
/// let engine = Engine::builder().catalog(workload.catalog).build().unwrap();
/// let session = engine.session();
/// let stmt = engine
///     .prepare(&workload.queries[0], OptimizerChoice::Bqo)
///     .unwrap();
/// let out = session.execute(&stmt, RunOptions::new()).unwrap();
/// assert!(out.result.output_rows > 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

impl Engine {
    /// Starts building an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Wraps an existing catalog (e.g. one produced by the workload
    /// generators) with the default execution configuration and a fresh plan
    /// cache.
    pub fn from_catalog(catalog: Catalog) -> Self {
        let exec_config = ExecConfig::default();
        Engine {
            inner: Arc::new(EngineInner {
                catalog_version: catalog.version(),
                catalog_tag: catalog.schema_tag(),
                catalog,
                exec_config,
                cache: PlanCache::new(),
                pool_workers: default_pool_workers(exec_config),
                pool: OnceLock::new(),
            }),
        }
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.inner.catalog
    }

    /// The engine's default execution configuration.
    pub fn exec_config(&self) -> ExecConfig {
        self.inner.exec_config
    }

    /// The plan cache serving [`Engine::prepare`] and [`Engine::bind`]
    /// (exposes hit/miss/re-optimization counters).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.inner.cache
    }

    /// The catalog version this engine was built against.
    pub fn catalog_version(&self) -> u64 {
        self.inner.catalog_version
    }

    /// One consolidated observability snapshot: plan-cache counters, the
    /// worker-pool size, and the catalog generation — replacing the scattered
    /// per-component getters in dashboards and examples.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            cache: self.inner.cache.cache_stats(),
            pool_workers: self.inner.pool_workers,
            catalog_version: self.inner.catalog_version,
            catalog_tables: self.inner.catalog.len(),
        }
    }

    /// The engine-owned persistent [`WorkerPool`] backing every parallel
    /// section run through this engine's sessions. Spawned lazily on first
    /// use; its threads are joined when the engine's last clone drops.
    /// Cloning the returned handle is cheap and shares the workers.
    pub fn worker_pool(&self) -> &WorkerPool {
        self.inner
            .pool
            .get_or_init(|| WorkerPool::new(self.inner.pool_workers))
    }

    /// Builds the executor for one run: parallel configurations draw their
    /// helper workers from the engine pool, serial ones never touch (or
    /// spawn) it.
    fn executor_for(&self, config: ExecConfig) -> Executor<'_> {
        let executor = Executor::with_config(&self.inner.catalog, config);
        if config.num_threads > 1 {
            executor.with_worker_pool(self.worker_pool().clone())
        } else {
            executor
        }
    }

    /// Opens a session with the engine's default execution configuration.
    /// Sessions are cheap (an `Arc` clone plus a `Copy` config) — open one
    /// per thread or per request.
    pub fn session(&self) -> Session {
        Session {
            engine: self.clone(),
            exec_config: self.inner.exec_config,
        }
    }

    /// Resolves and optimizes a literal (fully bound) query into an owned
    /// [`PreparedStatement`], consulting the plan cache.
    ///
    /// Parameterized specs must go through [`Engine::bind`]; preparing one
    /// directly is a planning error naming the first unbound parameter.
    pub fn prepare(
        &self,
        query: &QuerySpec,
        choice: OptimizerChoice,
    ) -> Result<PreparedStatement, BqoError> {
        self.prepare_fingerprinted(query, query.fingerprint(), choice)
    }

    /// Parses and binds a SQL `SELECT` against this engine's catalog,
    /// returning the lowered [`QuerySpec`] (see [`bqo_sql`] for the
    /// supported grammar). Lexer/parser/binder errors surface as planning
    /// errors carrying the caret diagnostic (or the structured
    /// table/column/type variant) and the query text as the label.
    pub fn parse_sql(&self, sql: &str) -> Result<QuerySpec, BqoError> {
        bqo_sql::lower(sql, &self.inner.catalog)
            .map_err(|e| BqoError::planning(bqo_sql::query_label(sql), e.to_storage()))
    }

    /// Parses, binds and prepares a literal SQL query — the SQL face of
    /// [`Engine::prepare`]. The plan cache is consulted under the lowered
    /// spec's canonical fingerprint, so the same query modulo literal
    /// order (reordered predicates, swapped join sides, shuffled joins)
    /// hits the same cache entry. Parameterized SQL (`$name` placeholders)
    /// must go through [`Engine::bind_sql`].
    pub fn prepare_sql(
        &self,
        sql: &str,
        choice: OptimizerChoice,
    ) -> Result<PreparedStatement, BqoError> {
        let spec = self.parse_sql(sql)?;
        let mut stmt = self.prepare(&spec, choice)?;
        stmt.sql = Some(sql.to_string());
        Ok(stmt)
    }

    /// Parses a parameterized SQL template and binds it with `params` — the
    /// SQL face of [`Engine::bind`]: selectivities are re-derived from the
    /// bound literals and the plan cache is consulted under the *template*
    /// fingerprint, so repeated binds of one SQL template share a cache
    /// entry.
    pub fn bind_sql(
        &self,
        sql: &str,
        params: &Params,
        choice: OptimizerChoice,
    ) -> Result<PreparedStatement, BqoError> {
        let spec = self.parse_sql(sql)?;
        let mut stmt = self.bind(&spec, params, choice)?;
        stmt.sql = Some(sql.to_string());
        Ok(stmt)
    }

    /// Binds a parameterized query and prepares it: placeholders are
    /// substituted from `params`, per-relation cardinalities and
    /// selectivities are re-derived from catalog statistics for the bound
    /// values, and the plan cache is consulted under the *template*
    /// fingerprint — so repeated binds of one template share a cache entry,
    /// and a bind whose selectivities leave the stored envelope transparently
    /// re-optimizes (see [`PlanCache`]).
    pub fn bind(
        &self,
        query: &QuerySpec,
        params: &Params,
        choice: OptimizerChoice,
    ) -> Result<PreparedStatement, BqoError> {
        let bound = query
            .bind(params)
            .map_err(|e| BqoError::planning(&query.name, e))?;
        self.prepare_fingerprinted(&bound, query.fingerprint(), choice)
    }

    fn prepare_fingerprinted(
        &self,
        bound: &QuerySpec,
        fingerprint: String,
        choice: OptimizerChoice,
    ) -> Result<PreparedStatement, BqoError> {
        let graph = bound
            .to_join_graph(&self.inner.catalog)
            .map_err(|e| BqoError::planning(&bound.name, e))?;
        let key = format!(
            "v{}-{:016x}|{}|{fingerprint}",
            self.inner.catalog_version,
            self.inner.catalog_tag,
            choice.display_label()
        );
        let (plan, cache_status) = self
            .inner
            .cache
            .resolve(&key, &graph, || optimize(&graph, choice));
        // The cached plan may have been optimized for different (in-envelope)
        // selectivities; the cost estimate is always re-derived for *this*
        // bind's statistics — a cheap model evaluation, not an optimizer run.
        let estimated_cost = CostModel::new(&graph).cout_physical(&plan);
        Ok(PreparedStatement {
            name: bound.name.clone(),
            choice,
            graph,
            plan,
            estimated_cost,
            cache_status,
            default_exec: self.inner.exec_config,
            sql: None,
        })
    }

    /// Convenience: prepare and run in one call with the engine's execution
    /// configuration.
    pub fn run(&self, query: &QuerySpec, choice: OptimizerChoice) -> Result<QueryResult, BqoError> {
        let stmt = self.prepare(query, choice)?;
        self.session().run(&stmt)
    }

    /// Executes a hand-built physical plan (e.g. a specific join order under
    /// study, as in the Figure 2 experiment) with the engine's execution
    /// configuration. Error context is labelled with the joined relation
    /// names; use [`Engine::execute_plan_named`] when a real query name is
    /// available.
    pub fn execute_plan(
        &self,
        graph: &JoinGraph,
        plan: &PhysicalPlan,
    ) -> Result<QueryResult, BqoError> {
        self.execute_plan_named_with(&plan_label(graph), graph, plan, self.inner.exec_config)
    }

    /// Executes a hand-built physical plan with an explicit configuration.
    pub fn execute_plan_with(
        &self,
        graph: &JoinGraph,
        plan: &PhysicalPlan,
        config: ExecConfig,
    ) -> Result<QueryResult, BqoError> {
        self.execute_plan_named_with(&plan_label(graph), graph, plan, config)
    }

    /// Executes a hand-built physical plan, attaching `name` (e.g. the
    /// originating query's name) to any execution error.
    pub fn execute_plan_named(
        &self,
        name: &str,
        graph: &JoinGraph,
        plan: &PhysicalPlan,
    ) -> Result<QueryResult, BqoError> {
        self.execute_plan_named_with(name, graph, plan, self.inner.exec_config)
    }

    /// Executes a hand-built physical plan with an explicit configuration,
    /// attaching `name` to any execution error.
    pub fn execute_plan_named_with(
        &self,
        name: &str,
        graph: &JoinGraph,
        plan: &PhysicalPlan,
        config: ExecConfig,
    ) -> Result<QueryResult, BqoError> {
        self.execute_plan_request(name, graph, plan, config, None)
    }

    /// Cancellation-aware plan execution for the serving layer: like
    /// [`Engine::execute_plan_named_with`], additionally observing `cancel`.
    pub(crate) fn execute_plan_request(
        &self,
        name: &str,
        graph: &JoinGraph,
        plan: &PhysicalPlan,
        config: ExecConfig,
        cancel: Option<CancelToken>,
    ) -> Result<QueryResult, BqoError> {
        let mut executor = self.executor_for(config);
        if let Some(token) = cancel {
            executor = executor.with_cancel_token(token);
        }
        executor
            .execute_bound(BoundPlan::new(graph, plan))
            .map_err(|e| BqoError::from_exec(name, e))
    }
}

/// One consolidated snapshot of the engine's observable state, returned by
/// [`Engine::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Plan-cache counters (hits, misses, re-optimizations, evictions,
    /// occupancy).
    pub cache: CacheStats,
    /// Helper-thread count the engine's worker pool is (or will be) sized to.
    /// The pool itself spawns lazily; this is the configured size either way.
    pub pool_workers: usize,
    /// The catalog generation the engine was built against.
    pub catalog_version: u64,
    /// Number of tables in the catalog.
    pub catalog_tables: usize,
}

/// Runs the chosen optimizer over a resolved join graph.
fn optimize(graph: &JoinGraph, choice: OptimizerChoice) -> PhysicalPlan {
    match choice {
        OptimizerChoice::Baseline => BaselineOptimizer::new().optimize(graph),
        OptimizerChoice::BaselineNoBitvectors => {
            BaselineOptimizer::without_bitvectors().optimize(graph)
        }
        OptimizerChoice::Bqo => BqoOptimizer::new().optimize(graph),
        OptimizerChoice::BqoWithThreshold(t) => BqoOptimizer::with_threshold(t).optimize(graph),
    }
}

/// Descriptive label for ad-hoc plans executed without a query name: the
/// joined relation names.
fn plan_label(graph: &JoinGraph) -> String {
    if graph.num_relations() == 0 {
        return "(empty plan)".to_string();
    }
    let names: Vec<&str> = graph.relations().iter().map(|r| r.name.as_str()).collect();
    names.join(" ⋈ ")
}

/// Renders a row-count knob, showing `usize::MAX` as "unbatched".
fn render_rows(n: usize) -> String {
    if n == usize::MAX {
        "unbatched".to_string()
    } else {
        n.to_string()
    }
}

/// Renders the execution-configuration line appended to EXPLAIN output.
fn render_exec_config(config: ExecConfig) -> String {
    let kernels = match config.kernel_mode {
        bqo_exec::KernelMode::Vectorized => "vectorized",
        bqo_exec::KernelMode::Scalar => "scalar",
    };
    format!(
        "execution: batch_size={}, num_threads={}, morsel_size={}, kernels={}, zone_map_pruning={}\n",
        render_rows(config.batch_size),
        config.num_threads,
        render_rows(config.effective_morsel_size()),
        kernels,
        if config.zone_map_pruning { "on" } else { "off" }
    )
}

/// Renders the storage-counter line appended to EXPLAIN ANALYZE output:
/// chunks read vs pruned by zone maps (with the pruning ratio) and bytes
/// fetched. Purely in-memory plans report zero chunks.
fn render_storage_counters(metrics: &ExecutionMetrics) -> String {
    format!(
        "storage: chunks_read={}, chunks_pruned={} (pruned {:.1}%), bytes_read={}\n",
        metrics.chunks_read,
        metrics.chunks_pruned,
        metrics.chunk_pruning_ratio() * 100.0,
        metrics.bytes_read
    )
}

/// Builder for [`Engine`]: registers tables and constraints, sets the
/// execution configuration and (optionally) a shared plan cache, and
/// validates everything at [`EngineBuilder::build`].
#[derive(Debug, Default)]
pub struct EngineBuilder {
    catalog: Catalog,
    exec_config: ExecConfig,
    cache: Option<PlanCache>,
    worker_threads: Option<usize>,
    primary_keys: Vec<(String, String)>,
    foreign_keys: Vec<ForeignKey>,
}

impl EngineBuilder {
    /// Uses an existing catalog as the starting point.
    pub fn catalog(mut self, catalog: Catalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// Registers a table.
    pub fn table(mut self, table: Table) -> Self {
        self.catalog.register_table(table);
        self
    }

    /// Declares a primary key (drives PKFK join detection). Validated at
    /// [`EngineBuilder::build`].
    pub fn primary_key(mut self, table: impl Into<String>, column: impl Into<String>) -> Self {
        self.primary_keys.push((table.into(), column.into()));
        self
    }

    /// Declares a foreign key. Validated at [`EngineBuilder::build`].
    pub fn foreign_key(mut self, fk: ForeignKey) -> Self {
        self.foreign_keys.push(fk);
        self
    }

    /// Sets the execution configuration (filter kind, bitvectors on/off,
    /// batch size, morsel size, worker-thread count, parallel threshold).
    pub fn exec_config(mut self, config: ExecConfig) -> Self {
        self.exec_config = config;
        self
    }

    /// Pins the engine's persistent worker pool to exactly `threads` helper
    /// threads (the calling thread always participates as worker 0 on top).
    /// Without this, the pool is sized to
    /// `max(default num_threads, available_parallelism, 4) - 1`. `0` disables
    /// the pool: parallel sections fall back to per-section scoped spawns —
    /// the lever the serving-throughput bench uses to measure what the pool
    /// saves.
    pub fn worker_threads(mut self, threads: usize) -> Self {
        self.worker_threads = Some(threads);
        self
    }

    /// Uses a shared plan cache instead of a fresh one. Entries are keyed by
    /// catalog version, so engines built over *different generations of the
    /// same catalog lineage* can safely share a cache (a version bump
    /// invalidates the older engine's entries for the newer one). Unrelated
    /// catalogs should not share a cache.
    pub fn plan_cache(mut self, cache: PlanCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Validates the declared constraints and builds the engine.
    pub fn build(mut self) -> Result<Engine, BqoError> {
        for (table, column) in &self.primary_keys {
            self.catalog
                .declare_primary_key(table, column)
                .map_err(BqoError::setup)?;
        }
        for fk in self.foreign_keys.drain(..) {
            self.catalog
                .declare_foreign_key(fk)
                .map_err(BqoError::setup)?;
        }
        Ok(Engine {
            inner: Arc::new(EngineInner {
                catalog_version: self.catalog.version(),
                catalog_tag: self.catalog.schema_tag(),
                catalog: self.catalog,
                exec_config: self.exec_config,
                cache: self.cache.unwrap_or_default(),
                pool_workers: self
                    .worker_threads
                    .unwrap_or_else(|| default_pool_workers(self.exec_config)),
                pool: OnceLock::new(),
            }),
        })
    }
}

/// An owned, fully bound and optimized statement: the resolved join graph,
/// the chosen physical plan (with bitvector placements) and its estimated
/// cost. Carries no engine borrow — it is `'static`, `Send + Sync`, cheap to
/// clone (the plan is `Arc`-shared with the cache) and can be executed by any
/// [`Session`] of the engine it was prepared against.
#[derive(Debug, Clone)]
pub struct PreparedStatement {
    name: String,
    choice: OptimizerChoice,
    graph: JoinGraph,
    plan: Arc<PhysicalPlan>,
    estimated_cost: CoutBreakdown,
    cache_status: CacheStatus,
    default_exec: ExecConfig,
    /// The original SQL text, for statements prepared through
    /// [`Engine::prepare_sql`] / [`Engine::bind_sql`].
    sql: Option<String>,
}

impl PreparedStatement {
    /// The query's name (copied from the [`QuerySpec`]).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Which optimizer produced the plan.
    pub fn choice(&self) -> OptimizerChoice {
        self.choice
    }

    /// The statistics-annotated join graph the statement was bound against.
    pub fn graph(&self) -> &JoinGraph {
        &self.graph
    }

    /// The physical plan, including bitvector filter placements.
    pub fn plan(&self) -> &PhysicalPlan {
        &self.plan
    }

    /// The plan as a shared handle (the same allocation the plan cache
    /// serves to other statements).
    pub fn shared_plan(&self) -> Arc<PhysicalPlan> {
        Arc::clone(&self.plan)
    }

    /// Estimated bitvector-aware `Cout` of the plan, re-derived for this
    /// statement's bound selectivities.
    pub fn estimated_cost(&self) -> &CoutBreakdown {
        &self.estimated_cost
    }

    /// Whether this statement's plan came from the cache ([`CacheStatus::Hit`]),
    /// a first optimization ([`CacheStatus::Miss`]) or an envelope-exit
    /// re-optimization ([`CacheStatus::Reoptimized`]).
    pub fn cache_status(&self) -> CacheStatus {
        self.cache_status
    }

    /// The statement viewed as the execution layer's bound-plan unit.
    pub fn bound(&self) -> BoundPlan<'_> {
        BoundPlan::new(&self.graph, &self.plan)
    }

    /// EXPLAIN-style rendering of the plan, followed by the engine's default
    /// execution configuration (batch size, worker-thread count and morsel
    /// size). Use [`Session::explain`] (or [`PreparedStatement::explain_with`])
    /// to render a session's overridden configuration instead.
    pub fn explain(&self) -> String {
        self.explain_with(self.default_exec)
    }

    /// EXPLAIN-style rendering of the plan followed by an explicit execution
    /// configuration. Statements prepared from SQL lead with the original
    /// query text.
    pub fn explain_with(&self, config: ExecConfig) -> String {
        let mut out = String::new();
        if let Some(sql) = &self.sql {
            out.push_str(&format!("sql: {sql}\n"));
        }
        out.push_str(&self.plan.explain(&self.graph));
        out.push_str(&render_exec_config(config));
        out
    }

    /// The original SQL text, for statements prepared through
    /// [`Engine::prepare_sql`] / [`Engine::bind_sql`]; `None` for
    /// spec-prepared statements.
    pub fn sql(&self) -> Option<&str> {
        self.sql.as_deref()
    }
}

/// Per-run knobs for [`Session::execute`]: an optional [`ExecConfig`]
/// override, whether to collect the output rows, and an optional
/// [`CancelToken`] observed by the run.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Execution configuration for this run; `None` uses the session's.
    pub exec_config: Option<ExecConfig>,
    /// When true, the concatenated output rows are returned in
    /// [`StatementOutput::rows`] — the differential-testing mode the oracle
    /// harnesses use to compare results bit for bit.
    pub collect_rows: bool,
    /// Cancel token the run observes cooperatively; firing it (or its
    /// deadline passing) aborts the run within roughly one morsel,
    /// surfacing as a [`BqoError`] with [`BqoError::is_cancelled`] set and
    /// the partial metrics attached.
    pub cancel: Option<CancelToken>,
}

impl RunOptions {
    /// Default options: session config, no row collection, no cancel token.
    pub fn new() -> Self {
        RunOptions::default()
    }

    /// The same options with an explicit execution configuration.
    pub fn with_exec_config(mut self, config: ExecConfig) -> Self {
        self.exec_config = Some(config);
        self
    }

    /// The same options collecting the output rows.
    pub fn collecting_rows(mut self) -> Self {
        self.collect_rows = true;
        self
    }

    /// The same options observing `token` for cooperative cancellation.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }
}

/// Everything one [`Session::execute`] run produces: the query result, the
/// collected rows (when [`RunOptions::collect_rows`] was set) and how the
/// statement's plan was obtained from the cache.
#[derive(Debug, Clone)]
pub struct StatementOutput {
    /// Row count and execution metrics.
    pub result: QueryResult,
    /// Concatenated output rows, present iff the run collected them.
    pub rows: Option<Batch>,
    /// The statement's plan-cache status (copied from the statement — a
    /// property of preparation, repeated here so serving callers get the
    /// whole story from one value).
    pub cache_status: CacheStatus,
}

/// A lightweight execution handle: an engine reference plus per-session
/// [`ExecConfig`] overrides. Sessions are `Clone + Send + Sync`; open one per
/// thread or request and run any number of [`PreparedStatement`]s through it
/// via [`Session::execute`].
#[derive(Debug, Clone)]
pub struct Session {
    engine: Engine,
    exec_config: ExecConfig,
}

impl Session {
    /// The engine this session executes against.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The session's execution configuration.
    pub fn exec_config(&self) -> ExecConfig {
        self.exec_config
    }

    /// The same session with a different execution configuration (e.g.
    /// bitvectors disabled, exact filters, another batch size or
    /// worker-thread count).
    pub fn with_exec_config(mut self, config: ExecConfig) -> Self {
        self.exec_config = config;
        self
    }

    /// Convenience passthrough to [`Engine::prepare`].
    pub fn prepare(
        &self,
        query: &QuerySpec,
        choice: OptimizerChoice,
    ) -> Result<PreparedStatement, BqoError> {
        self.engine.prepare(query, choice)
    }

    /// Convenience passthrough to [`Engine::bind`].
    pub fn bind(
        &self,
        query: &QuerySpec,
        params: &Params,
        choice: OptimizerChoice,
    ) -> Result<PreparedStatement, BqoError> {
        self.engine.bind(query, params, choice)
    }

    /// Runs a prepared statement through the pull-based operator pipeline —
    /// the single execution entry point. [`RunOptions`] selects the
    /// configuration (session default unless overridden), whether to collect
    /// output rows, and an optional cancel token:
    ///
    /// ```ignore
    /// let out = session.execute(&stmt, RunOptions::new())?;                  // plain run
    /// let out = session.execute(&stmt, RunOptions::new().collecting_rows())?; // + rows
    /// ```
    pub fn execute(
        &self,
        stmt: &PreparedStatement,
        options: RunOptions,
    ) -> Result<StatementOutput, BqoError> {
        let config = options.exec_config.unwrap_or(self.exec_config);
        let mut executor = self.engine.executor_for(config);
        if let Some(token) = options.cancel {
            executor = executor.with_cancel_token(token);
        }
        let (result, rows) = if options.collect_rows {
            executor
                .execute_bound_with_rows(stmt.bound())
                .map(|(result, rows)| (result, Some(rows)))
        } else {
            executor.execute_bound(stmt.bound()).map(|r| (r, None))
        }
        .map_err(|e| BqoError::from_exec(&stmt.name, e))?;
        Ok(StatementOutput {
            result,
            rows,
            cache_status: stmt.cache_status,
        })
    }

    /// Runs a prepared statement with the session's execution configuration.
    /// Thin wrapper over [`Session::execute`], kept for existing callers.
    #[doc(hidden)]
    pub fn run(&self, stmt: &PreparedStatement) -> Result<QueryResult, BqoError> {
        self.execute(stmt, RunOptions::new()).map(|out| out.result)
    }

    /// Runs a prepared statement with an explicit execution configuration.
    /// Thin wrapper over [`Session::execute`], kept for existing callers.
    #[doc(hidden)]
    pub fn run_with(
        &self,
        stmt: &PreparedStatement,
        config: ExecConfig,
    ) -> Result<QueryResult, BqoError> {
        self.execute(stmt, RunOptions::new().with_exec_config(config))
            .map(|out| out.result)
    }

    /// Runs a prepared statement and returns the concatenated output rows.
    /// Thin wrapper over [`Session::execute`] with
    /// [`RunOptions::collecting_rows`], kept for existing callers.
    #[doc(hidden)]
    pub fn run_with_rows(
        &self,
        stmt: &PreparedStatement,
        config: ExecConfig,
    ) -> Result<(QueryResult, Batch), BqoError> {
        self.execute(
            stmt,
            RunOptions::new().with_exec_config(config).collecting_rows(),
        )
        .map(|out| (out.result, out.rows.expect("rows were collected")))
    }

    /// EXPLAIN-style rendering of a statement's plan under the session's
    /// execution configuration.
    pub fn explain(&self, stmt: &PreparedStatement) -> String {
        stmt.explain_with(self.exec_config)
    }

    /// EXPLAIN ANALYZE: renders the plan (each scan labelled with its
    /// backing, `scan=memory` or `scan=file`), executes the statement under
    /// the session's configuration, and appends the observed storage
    /// counters — chunks read vs pruned by zone maps, the pruning ratio and
    /// bytes fetched. Purely in-memory plans report zero chunks.
    pub fn explain_analyze(&self, stmt: &PreparedStatement) -> Result<String, BqoError> {
        let out = self.execute(stmt, RunOptions::new())?;
        let mut text = stmt.explain_with(self.exec_config);
        text.push_str(&render_storage_counters(&out.result.metrics));
        Ok(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The serving contract: everything a multi-threaded server shares is
    // Send + Sync and free of borrowed lifetimes.
    #[allow(dead_code)]
    fn assert_send_sync<T: Send + Sync + 'static>() {}

    #[test]
    fn serving_types_are_send_sync_and_owned() {
        assert_send_sync::<Engine>();
        assert_send_sync::<Session>();
        assert_send_sync::<PreparedStatement>();
        assert_send_sync::<PlanCache>();
    }

    #[test]
    fn plan_label_names_relations() {
        use bqo_plan::RelationInfo;
        let mut g = JoinGraph::new();
        assert_eq!(plan_label(&g), "(empty plan)");
        g.add_relation(RelationInfo::new("fact", 1.0, 1.0));
        g.add_relation(RelationInfo::new("dim", 1.0, 1.0));
        assert_eq!(plan_label(&g), "fact ⋈ dim");
    }

    #[test]
    fn exec_config_rendering_reports_all_knobs() {
        let line = render_exec_config(ExecConfig::default());
        assert!(line.contains("batch_size=4096"), "{line}");
        assert!(line.contains("num_threads=1"), "{line}");
        assert!(line.contains("morsel_size=4096"), "{line}");
        let line = render_exec_config(
            ExecConfig::default()
                .with_batch_size(usize::MAX)
                .with_num_threads(4)
                .with_morsel_size(64),
        );
        assert!(line.contains("batch_size=unbatched"), "{line}");
        assert!(line.contains("num_threads=4"), "{line}");
        assert!(line.contains("morsel_size=64"), "{line}");
        let line = render_exec_config(
            ExecConfig::default().with_kernel_mode(bqo_exec::KernelMode::Scalar),
        );
        assert!(line.contains("kernels=scalar"), "{line}");
    }
}
