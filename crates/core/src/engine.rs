//! The `Engine` facade: one entry point for catalog setup, optimization and
//! pipelined execution.

use crate::{BqoError, OptimizerChoice};
use bqo_exec::{ExecConfig, QueryResult};
use bqo_optimizer::{BaselineOptimizer, BqoOptimizer, Optimizer};
use bqo_plan::{CostModel, CoutBreakdown, JoinGraph, PhysicalPlan, QuerySpec};
use bqo_storage::{Catalog, ForeignKey, Table};

/// The unified query engine: a catalog plus an execution configuration.
///
/// Construct one with [`Engine::builder`] (or [`Engine::from_catalog`] when a
/// workload generator already produced the catalog), then [`Engine::prepare`]
/// a [`QuerySpec`] into a [`PreparedQuery`] and [`PreparedQuery::run`] it:
///
/// ```
/// use bqo_core::{Engine, OptimizerChoice};
/// use bqo_core::workloads::{star, Scale};
///
/// let workload = star::generate(Scale(0.02), 3, 1, 42);
/// let engine = Engine::builder().catalog(workload.catalog).build().unwrap();
/// let prepared = engine
///     .prepare(&workload.queries[0], OptimizerChoice::Bqo)
///     .unwrap();
/// let result = prepared.run().unwrap();
/// assert!(result.output_rows > 0);
/// ```
#[derive(Debug, Default)]
pub struct Engine {
    catalog: Catalog,
    exec_config: ExecConfig,
}

impl Engine {
    /// Starts building an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Wraps an existing catalog (e.g. one produced by the workload
    /// generators) with the default execution configuration.
    pub fn from_catalog(catalog: Catalog) -> Self {
        Engine {
            catalog,
            exec_config: ExecConfig::default(),
        }
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The engine's default execution configuration.
    pub fn exec_config(&self) -> ExecConfig {
        self.exec_config
    }

    /// Resolves and optimizes a query with the chosen optimizer, returning a
    /// plan ready to [`PreparedQuery::run`].
    pub fn prepare(
        &self,
        query: &QuerySpec,
        choice: OptimizerChoice,
    ) -> Result<PreparedQuery<'_>, BqoError> {
        let graph = query
            .to_join_graph(&self.catalog)
            .map_err(|e| BqoError::planning(&query.name, e))?;
        let plan = match choice {
            OptimizerChoice::Baseline => BaselineOptimizer::new().optimize(&graph),
            OptimizerChoice::BaselineNoBitvectors => {
                BaselineOptimizer::without_bitvectors().optimize(&graph)
            }
            OptimizerChoice::Bqo => BqoOptimizer::new().optimize(&graph),
            OptimizerChoice::BqoWithThreshold(t) => {
                BqoOptimizer::with_threshold(t).optimize(&graph)
            }
        };
        let estimated_cost = CostModel::new(&graph).cout_physical(&plan);
        Ok(PreparedQuery {
            engine: self,
            name: query.name.clone(),
            choice,
            graph,
            plan,
            estimated_cost,
        })
    }

    /// Convenience: prepare and run in one call with the engine's execution
    /// configuration.
    pub fn run(&self, query: &QuerySpec, choice: OptimizerChoice) -> Result<QueryResult, BqoError> {
        self.prepare(query, choice)?.run()
    }

    /// Executes a hand-built physical plan (e.g. a specific join order under
    /// study, as in the Figure 2 experiment) with the engine's execution
    /// configuration.
    pub fn execute_plan(
        &self,
        graph: &JoinGraph,
        plan: &PhysicalPlan,
    ) -> Result<QueryResult, BqoError> {
        self.execute_plan_with(graph, plan, self.exec_config)
    }

    /// Executes a hand-built physical plan with an explicit configuration.
    pub fn execute_plan_with(
        &self,
        graph: &JoinGraph,
        plan: &PhysicalPlan,
        config: ExecConfig,
    ) -> Result<QueryResult, BqoError> {
        bqo_exec::execute_plan(&self.catalog, graph, plan, config)
            .map_err(|e| BqoError::execution("<ad-hoc plan>", e))
    }
}

/// Builder for [`Engine`]: registers tables and constraints, sets the
/// execution configuration, and validates everything at [`EngineBuilder::build`].
#[derive(Debug, Default)]
pub struct EngineBuilder {
    catalog: Catalog,
    exec_config: ExecConfig,
    primary_keys: Vec<(String, String)>,
    foreign_keys: Vec<ForeignKey>,
}

impl EngineBuilder {
    /// Uses an existing catalog as the starting point.
    pub fn catalog(mut self, catalog: Catalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// Registers a table.
    pub fn table(mut self, table: Table) -> Self {
        self.catalog.register_table(table);
        self
    }

    /// Declares a primary key (drives PKFK join detection). Validated at
    /// [`EngineBuilder::build`].
    pub fn primary_key(mut self, table: impl Into<String>, column: impl Into<String>) -> Self {
        self.primary_keys.push((table.into(), column.into()));
        self
    }

    /// Declares a foreign key. Validated at [`EngineBuilder::build`].
    pub fn foreign_key(mut self, fk: ForeignKey) -> Self {
        self.foreign_keys.push(fk);
        self
    }

    /// Sets the execution configuration (filter kind, bitvectors on/off,
    /// batch size, morsel size, worker-thread count).
    pub fn exec_config(mut self, config: ExecConfig) -> Self {
        self.exec_config = config;
        self
    }

    /// Validates the declared constraints and builds the engine.
    pub fn build(mut self) -> Result<Engine, BqoError> {
        for (table, column) in &self.primary_keys {
            self.catalog
                .declare_primary_key(table, column)
                .map_err(BqoError::setup)?;
        }
        for fk in self.foreign_keys.drain(..) {
            self.catalog
                .declare_foreign_key(fk)
                .map_err(BqoError::setup)?;
        }
        Ok(Engine {
            catalog: self.catalog,
            exec_config: self.exec_config,
        })
    }
}

/// A query after optimization, bound to its engine: the resolved join graph,
/// the chosen physical plan (with bitvector placements) and its estimated
/// cost.
#[derive(Debug)]
pub struct PreparedQuery<'e> {
    engine: &'e Engine,
    name: String,
    choice: OptimizerChoice,
    graph: JoinGraph,
    plan: PhysicalPlan,
    estimated_cost: CoutBreakdown,
}

impl PreparedQuery<'_> {
    /// The query's name (copied from the [`QuerySpec`]).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Which optimizer produced the plan.
    pub fn choice(&self) -> OptimizerChoice {
        self.choice
    }

    /// The statistics-annotated join graph the optimizer worked on.
    pub fn graph(&self) -> &JoinGraph {
        &self.graph
    }

    /// The physical plan, including bitvector filter placements.
    pub fn plan(&self) -> &PhysicalPlan {
        &self.plan
    }

    /// Estimated bitvector-aware `Cout` of the plan.
    pub fn estimated_cost(&self) -> &CoutBreakdown {
        &self.estimated_cost
    }

    /// EXPLAIN-style rendering of the plan, followed by the engine's
    /// execution configuration (batch size and worker-thread count).
    pub fn explain(&self) -> String {
        let mut out = self.plan.explain(&self.graph);
        let config = self.engine.exec_config;
        if config.batch_size == usize::MAX {
            out.push_str(&format!(
                "execution: batch_size=unbatched, num_threads={}\n",
                config.num_threads
            ));
        } else {
            out.push_str(&format!(
                "execution: batch_size={}, num_threads={}\n",
                config.batch_size, config.num_threads
            ));
        }
        out
    }

    /// Runs the plan through the pull-based operator pipeline with the
    /// engine's execution configuration.
    pub fn run(&self) -> Result<QueryResult, BqoError> {
        self.run_with(self.engine.exec_config)
    }

    /// Runs the plan with an explicit execution configuration (e.g.
    /// bitvectors disabled, exact filters, a different batch size or
    /// worker-thread count).
    pub fn run_with(&self, config: ExecConfig) -> Result<QueryResult, BqoError> {
        bqo_exec::execute_plan(&self.engine.catalog, &self.graph, &self.plan, config)
            .map_err(|e| BqoError::execution(&self.name, e))
    }

    /// Runs the plan like [`PreparedQuery::run_with`] but additionally
    /// returns the concatenated output rows — the differential-testing entry
    /// point used by the parallel-oracle harness to compare results bit for
    /// bit across `(batch_size, num_threads)` configurations.
    pub fn run_with_rows(
        &self,
        config: ExecConfig,
    ) -> Result<(QueryResult, bqo_exec::Batch), BqoError> {
        bqo_exec::Executor::with_config(&self.engine.catalog, config)
            .execute_with_rows(&self.graph, &self.plan)
            .map_err(|e| BqoError::execution(&self.name, e))
    }
}
