//! Admission-controlled serving front end over [`Engine`] / [`Session`].
//!
//! [`Session`]: crate::Session
//!
//! A [`Server`] is what turns the engine into a multi-tenant runtime: instead
//! of every caller grabbing a [`Session`] and flooding the executor, clients
//! **submit** work and the server shapes the traffic —
//!
//! * **FIFO admission with a concurrency limiter.** At most
//!   [`ServerConfig::max_concurrent_queries`] statements execute at once (a
//!   fixed set of persistent dispatcher threads); everything else waits in a
//!   first-in-first-out queue.
//! * **Bounded-queue backpressure.** The queue holds at most
//!   [`ServerConfig::queue_capacity`] pending requests; submissions beyond
//!   that are rejected immediately with [`SubmitError::QueueFull`] instead of
//!   accumulating unbounded memory and latency.
//! * **Join-handle tickets.** [`Server::submit`] returns a [`Ticket`] — a
//!   join-handle-like future that [`Ticket::wait`]s for the
//!   [`QueryOutput`], can [`Ticket::cancel`] a not-yet-started request, and
//!   applies the server's [`ServerConfig::default_timeout`].
//! * **Panic containment.** A statement that panics mid-execution (e.g. a
//!   malformed hand-built plan) takes down neither the dispatcher nor the
//!   server: the panic is caught, surfaced through that request's ticket as
//!   [`ServeError::Panicked`], and the dispatcher keeps serving.
//! * **Graceful shutdown.** [`Server::shutdown`] stops admissions, drains
//!   everything already queued, and joins the dispatchers; it is idempotent
//!   and implied when the last server handle drops.
//! * **Operational visibility.** [`Server::stats`] reports admitted /
//!   completed / rejected / cancelled / failed / panicked counts, the live
//!   queue depth and running count, and cumulative wall time.
//!
//! Execution itself goes through the engine like any session run: plans come
//! from the shared [`crate::PlanCache`], and parallel sections draw their
//! helper workers from the engine-owned persistent
//! [`bqo_exec::WorkerPool`] — dispatchers are the *query*-level concurrency
//! limit, the pool is the *morsel*-level one, and both are reused across
//! requests so small queries stop paying per-query thread start-up.
//!
//! ```
//! use bqo_core::workloads::{star, Scale};
//! use bqo_core::{Engine, OptimizerChoice, Params, Server, ServerConfig};
//!
//! let workload = star::generate(Scale(0.02), 3, 1, 42);
//! let engine = Engine::from_catalog(workload.catalog);
//! let server = Server::new(engine, ServerConfig::default());
//! let template = star::build_param_query("by_bound", 3, &[0]);
//! let ticket = server
//!     .submit(
//!         &template,
//!         Some(&Params::new().set("bound0", 3i64)),
//!         OptimizerChoice::Bqo,
//!     )
//!     .unwrap();
//! let output = ticket.wait().unwrap();
//! assert!(output.result.output_rows > 0);
//! server.shutdown();
//! ```

use crate::engine::Engine;
use crate::{BqoError, CacheStatus, OptimizerChoice};
use bqo_exec::{Batch, ExecConfig, QueryResult};
use bqo_plan::{JoinGraph, Params, PhysicalPlan, QuerySpec};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Traffic-shaping knobs of a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Maximum number of statements executing concurrently (the number of
    /// persistent dispatcher threads). Values below 1 are treated as 1.
    pub max_concurrent_queries: usize,
    /// Maximum number of admitted-but-not-yet-started requests; submissions
    /// beyond this bound fail fast with [`SubmitError::QueueFull`]. Values
    /// below 1 are treated as 1.
    pub queue_capacity: usize,
    /// Default bound applied by [`Ticket::wait`]; `None` (the default) waits
    /// indefinitely. A timed-out wait leaves the request running — a later
    /// [`Ticket::wait_timeout`] can still collect the result.
    pub default_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_concurrent_queries: 4,
            queue_capacity: 128,
            default_timeout: None,
        }
    }
}

impl ServerConfig {
    /// The same configuration with a different concurrency limit (clamped to
    /// at least 1).
    pub fn with_max_concurrent_queries(mut self, max_concurrent_queries: usize) -> Self {
        self.max_concurrent_queries = max_concurrent_queries.max(1);
        self
    }

    /// The same configuration with a different pending-queue bound (clamped
    /// to at least 1).
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity.max(1);
        self
    }

    /// The same configuration with a default [`Ticket::wait`] timeout.
    pub fn with_default_timeout(mut self, timeout: Duration) -> Self {
        self.default_timeout = Some(timeout);
        self
    }
}

/// Per-request options for [`Server::submit_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SubmitOptions {
    /// Execution-configuration override for this request; `None` uses the
    /// engine's default configuration.
    pub exec_config: Option<ExecConfig>,
    /// Collect the concatenated output rows into [`QueryOutput::rows`]
    /// (the differential-testing entry point of the server oracle; row
    /// counts and metrics are always reported).
    pub collect_rows: bool,
}

impl SubmitOptions {
    /// The same options with an execution-configuration override.
    pub fn with_exec_config(mut self, config: ExecConfig) -> Self {
        self.exec_config = Some(config);
        self
    }

    /// The same options with output-row collection enabled.
    pub fn collecting_rows(mut self) -> Self {
        self.collect_rows = true;
        self
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The pending queue already holds `capacity` requests — backpressure:
    /// retry later or shed the request.
    QueueFull {
        /// The configured [`ServerConfig::queue_capacity`].
        capacity: usize,
    },
    /// The server is shutting down (or already shut down).
    ShutDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "server queue is full ({capacity} pending requests)")
            }
            SubmitError::ShutDown => write!(f, "server is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an admitted request produced no [`QueryOutput`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Planning or execution failed (the usual error path, with query name
    /// and phase attached).
    Query(BqoError),
    /// Execution panicked on the dispatcher; the payload's message. The
    /// dispatcher survived and keeps serving other requests.
    Panicked(String),
    /// The request was cancelled before execution started.
    Cancelled,
    /// [`Ticket::wait`]'s bound elapsed before the request finished. The
    /// request keeps running; a later wait can still collect its result.
    TimedOut,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Query(e) => write!(f, "{e}"),
            ServeError::Panicked(msg) => write!(f, "query execution panicked: {msg}"),
            ServeError::Cancelled => write!(f, "request was cancelled before it started"),
            ServeError::TimedOut => write!(f, "timed out waiting for the request to finish"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Query(e) => Some(e),
            _ => None,
        }
    }
}

/// The result of one served request.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// Row count and execution metrics (as returned by [`Session::run`]).
    ///
    /// [`Session::run`]: crate::Session::run
    pub result: QueryResult,
    /// Concatenated output rows, when requested via
    /// [`SubmitOptions::collect_rows`] (spec submissions only).
    pub rows: Option<Batch>,
    /// How the plan was obtained from the plan cache (`None` for hand-built
    /// plans submitted through [`Server::submit_plan`]).
    pub cache_status: Option<CacheStatus>,
    /// Time the request spent queued before a dispatcher picked it up.
    pub queue_wait: Duration,
    /// Submit-to-completion wall time (queueing + planning + execution).
    pub total_wall: Duration,
}

/// What a queued request executes.
enum Statement {
    /// A (possibly parameterized) query spec, planned through the engine's
    /// plan cache on the dispatcher.
    Spec {
        spec: QuerySpec,
        params: Option<Params>,
    },
    /// A hand-built physical plan (e.g. a specific join order under study).
    Plan {
        name: String,
        graph: JoinGraph,
        plan: PhysicalPlan,
    },
}

enum TicketPhase {
    Queued,
    Running,
    Finished(Result<QueryOutput, ServeError>),
}

struct TicketShared {
    phase: Mutex<TicketPhase>,
    done: Condvar,
}

impl TicketShared {
    fn new() -> Self {
        TicketShared {
            phase: Mutex::new(TicketPhase::Queued),
            done: Condvar::new(),
        }
    }

    fn finish(&self, outcome: Result<QueryOutput, ServeError>) {
        let mut phase = self.phase.lock().expect("ticket poisoned");
        *phase = TicketPhase::Finished(outcome);
        self.done.notify_all();
    }
}

/// A join-handle for one submitted request: wait for the output (with an
/// optional bound), poll, or cancel it before it starts. Dropping a ticket
/// detaches from the request — it still executes.
pub struct Ticket {
    shared: Arc<TicketShared>,
    default_timeout: Option<Duration>,
    /// Back-reference for [`Ticket::cancel`]: a cancelled request is removed
    /// from the server queue immediately, so it frees its admission slot.
    /// Weak so outstanding tickets never keep a shut-down server alive.
    server: std::sync::Weak<ServerShared>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("finished", &self.is_finished())
            .finish()
    }
}

impl Ticket {
    /// Blocks until the request finishes and returns its output, honoring
    /// the server's [`ServerConfig::default_timeout`] (no bound when the
    /// server has none). Waiting repeatedly is fine — the outcome is
    /// retained, and a wait that returns [`ServeError::TimedOut`] leaves the
    /// request running.
    pub fn wait(&self) -> Result<QueryOutput, ServeError> {
        self.wait_deadline(self.default_timeout.map(|t| Instant::now() + t))
    }

    /// Blocks until the request finishes or `timeout` elapses.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<QueryOutput, ServeError> {
        self.wait_deadline(Some(Instant::now() + timeout))
    }

    fn wait_deadline(&self, deadline: Option<Instant>) -> Result<QueryOutput, ServeError> {
        let mut phase = self.shared.phase.lock().expect("ticket poisoned");
        loop {
            if let TicketPhase::Finished(outcome) = &*phase {
                return outcome.clone();
            }
            phase = match deadline {
                None => self.shared.done.wait(phase).expect("ticket poisoned"),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(ServeError::TimedOut);
                    }
                    self.shared
                        .done
                        .wait_timeout(phase, deadline - now)
                        .expect("ticket poisoned")
                        .0
                }
            };
        }
    }

    /// The request's outcome if it already finished, without blocking.
    pub fn try_wait(&self) -> Option<Result<QueryOutput, ServeError>> {
        let phase = self.shared.phase.lock().expect("ticket poisoned");
        match &*phase {
            TicketPhase::Finished(outcome) => Some(outcome.clone()),
            _ => None,
        }
    }

    /// Whether the request has finished (successfully or not).
    pub fn is_finished(&self) -> bool {
        matches!(
            *self.shared.phase.lock().expect("ticket poisoned"),
            TicketPhase::Finished(_)
        )
    }

    /// Cancels the request if it has not started executing yet. Returns
    /// `true` on success (subsequent waits see [`ServeError::Cancelled`]);
    /// `false` if the request is already running or finished — execution is
    /// never interrupted mid-flight. A cancelled request is removed from the
    /// server queue at once: its admission slot frees up immediately, not
    /// when a dispatcher would have reached it.
    pub fn cancel(&self) -> bool {
        {
            let mut phase = self.shared.phase.lock().expect("ticket poisoned");
            if !matches!(*phase, TicketPhase::Queued) {
                return false;
            }
            *phase = TicketPhase::Finished(Err(ServeError::Cancelled));
            self.shared.done.notify_all();
        }
        if let Some(server) = self.server.upgrade() {
            // Drop the queued entry (it may already be gone if a dispatcher
            // popped it in the meantime — serve_one skips finished tickets).
            let mut state = server.state.lock().expect("server queue poisoned");
            state
                .queue
                .retain(|request| !Arc::ptr_eq(&request.ticket, &self.shared));
            server.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        }
        true
    }
}

struct QueuedRequest {
    statement: Statement,
    choice: OptimizerChoice,
    options: SubmitOptions,
    ticket: Arc<TicketShared>,
    submitted: Instant,
}

struct QueueState {
    queue: VecDeque<QueuedRequest>,
    accepting: bool,
    paused: bool,
    running: usize,
}

#[derive(Default)]
struct ServerCounters {
    admitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
    panicked: AtomicU64,
    total_wall_nanos: AtomicU64,
}

struct ServerShared {
    engine: Engine,
    config: ServerConfig,
    state: Mutex<QueueState>,
    /// Dispatchers park here while the queue is empty (or the server is
    /// paused).
    work: Condvar,
    counters: ServerCounters,
}

/// A point-in-time snapshot of a server's traffic counters, as returned by
/// [`Server::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests accepted into the queue.
    pub admitted: u64,
    /// Requests that finished with a [`QueryOutput`].
    pub completed: u64,
    /// Submissions rejected (queue full or server shut down).
    pub rejected: u64,
    /// Admitted requests cancelled before execution started.
    pub cancelled: u64,
    /// Admitted requests that failed planning or execution.
    pub failed: u64,
    /// Admitted requests whose execution panicked (contained per request).
    pub panicked: u64,
    /// Requests currently waiting in the queue.
    pub queue_depth: usize,
    /// Requests currently executing on dispatchers.
    pub running: usize,
    /// Cumulative submit-to-completion wall time over completed requests.
    pub total_wall: Duration,
}

/// Owner of the dispatcher threads: joined at [`Server::shutdown`] or when
/// the last server handle drops.
struct ServerOwner {
    shared: Arc<ServerShared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl ServerOwner {
    fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock().expect("server queue poisoned");
            state.accepting = false;
        }
        self.shared.work.notify_all();
        let handles = std::mem::take(&mut *self.handles.lock().expect("server queue poisoned"));
        for handle in handles {
            // Dispatchers contain request panics; the loop itself never
            // panics.
            handle.join().expect("server dispatcher panicked");
        }
    }
}

impl Drop for ServerOwner {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The admission-controlled serving front end (see the [module docs](self)).
/// Cloning a `Server` is a cheap handle copy; all clones share the queue,
/// dispatchers and counters. The dispatchers are joined at the first
/// [`Server::shutdown`] (or when the last handle drops).
#[derive(Clone)]
pub struct Server {
    shared: Arc<ServerShared>,
    owner: Arc<ServerOwner>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("config", &self.shared.config)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Server {
    /// Starts a server over an engine: spawns
    /// [`ServerConfig::max_concurrent_queries`] persistent dispatcher
    /// threads and begins accepting submissions immediately.
    pub fn new(engine: Engine, config: ServerConfig) -> Self {
        let config = config
            .with_max_concurrent_queries(config.max_concurrent_queries)
            .with_queue_capacity(config.queue_capacity);
        let shared = Arc::new(ServerShared {
            engine,
            config,
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                accepting: true,
                paused: false,
                running: 0,
            }),
            work: Condvar::new(),
            counters: ServerCounters::default(),
        });
        let handles = (0..config.max_concurrent_queries)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bqo-dispatch-{i}"))
                    .spawn(move || dispatcher_loop(shared))
                    .expect("spawning server dispatcher")
            })
            .collect();
        Server {
            owner: Arc::new(ServerOwner {
                shared: Arc::clone(&shared),
                handles: Mutex::new(handles),
            }),
            shared,
        }
    }

    /// The engine this server executes against.
    pub fn engine(&self) -> &Engine {
        &self.shared.engine
    }

    /// The server's traffic-shaping configuration.
    pub fn config(&self) -> ServerConfig {
        self.shared.config
    }

    /// Submits a (possibly parameterized) query for execution: `params` must
    /// be `Some` for templates with placeholders and may be `None` for
    /// literal specs. Returns the request's [`Ticket`] immediately, or a
    /// [`SubmitError`] when admission control rejects the request.
    pub fn submit(
        &self,
        spec: &QuerySpec,
        params: Option<&Params>,
        choice: OptimizerChoice,
    ) -> Result<Ticket, SubmitError> {
        self.submit_with(spec, params, choice, SubmitOptions::default())
    }

    /// [`Server::submit`] with per-request [`SubmitOptions`] (execution
    /// configuration override, output-row collection).
    pub fn submit_with(
        &self,
        spec: &QuerySpec,
        params: Option<&Params>,
        choice: OptimizerChoice,
        options: SubmitOptions,
    ) -> Result<Ticket, SubmitError> {
        self.enqueue(
            Statement::Spec {
                spec: spec.clone(),
                params: params.cloned(),
            },
            choice,
            options,
        )
    }

    /// Submits a hand-built physical plan (e.g. a specific join order under
    /// study), labelled `name` in errors and stats.
    pub fn submit_plan(
        &self,
        name: impl Into<String>,
        graph: JoinGraph,
        plan: PhysicalPlan,
    ) -> Result<Ticket, SubmitError> {
        self.enqueue(
            Statement::Plan {
                name: name.into(),
                graph,
                plan,
            },
            OptimizerChoice::Bqo,
            SubmitOptions::default(),
        )
    }

    fn enqueue(
        &self,
        statement: Statement,
        choice: OptimizerChoice,
        options: SubmitOptions,
    ) -> Result<Ticket, SubmitError> {
        let ticket = Arc::new(TicketShared::new());
        {
            let mut state = self.shared.state.lock().expect("server queue poisoned");
            if !state.accepting {
                self.shared
                    .counters
                    .rejected
                    .fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::ShutDown);
            }
            if state.queue.len() >= self.shared.config.queue_capacity {
                self.shared
                    .counters
                    .rejected
                    .fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::QueueFull {
                    capacity: self.shared.config.queue_capacity,
                });
            }
            state.queue.push_back(QueuedRequest {
                statement,
                choice,
                options,
                ticket: Arc::clone(&ticket),
                submitted: Instant::now(),
            });
            self.shared
                .counters
                .admitted
                .fetch_add(1, Ordering::Relaxed);
        }
        self.shared.work.notify_one();
        Ok(Ticket {
            shared: ticket,
            default_timeout: self.shared.config.default_timeout,
            server: Arc::downgrade(&self.shared),
        })
    }

    /// Pauses dispatching: admitted requests stay queued (admission control —
    /// including [`SubmitError::QueueFull`] backpressure — remains active).
    /// An operational drain/maintenance switch; [`Server::resume`] restarts
    /// dispatching. Shutdown while paused still drains the queue.
    pub fn pause(&self) {
        let mut state = self.shared.state.lock().expect("server queue poisoned");
        state.paused = true;
    }

    /// Resumes dispatching after [`Server::pause`].
    pub fn resume(&self) {
        {
            let mut state = self.shared.state.lock().expect("server queue poisoned");
            state.paused = false;
        }
        self.shared.work.notify_all();
    }

    /// A point-in-time snapshot of the server's counters and occupancy.
    pub fn stats(&self) -> ServerStats {
        let (queue_depth, running) = {
            let state = self.shared.state.lock().expect("server queue poisoned");
            (state.queue.len(), state.running)
        };
        let c = &self.shared.counters;
        ServerStats {
            admitted: c.admitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            panicked: c.panicked.load(Ordering::Relaxed),
            queue_depth,
            running,
            total_wall: Duration::from_nanos(c.total_wall_nanos.load(Ordering::Relaxed)),
        }
    }

    /// Stops accepting new submissions, drains everything already queued,
    /// and joins the dispatcher threads. Idempotent; implied when the last
    /// server handle drops. Submissions after shutdown fail with
    /// [`SubmitError::ShutDown`].
    pub fn shutdown(&self) {
        self.owner.shutdown();
    }
}

fn dispatcher_loop(shared: Arc<ServerShared>) {
    loop {
        let request = {
            let mut state = shared.state.lock().expect("server queue poisoned");
            loop {
                // A paused server holds requests in the queue — unless it is
                // shutting down, in which case draining wins.
                if !state.paused || !state.accepting {
                    if let Some(request) = state.queue.pop_front() {
                        state.running += 1;
                        break request;
                    }
                    if !state.accepting {
                        return;
                    }
                }
                state = shared.work.wait(state).expect("server queue poisoned");
            }
        };
        serve_one(&shared, request);
        let mut state = shared.state.lock().expect("server queue poisoned");
        state.running -= 1;
    }
}

/// Executes one dequeued request and resolves its ticket.
fn serve_one(shared: &ServerShared, request: QueuedRequest) {
    {
        let mut phase = request.ticket.phase.lock().expect("ticket poisoned");
        if matches!(*phase, TicketPhase::Finished(_)) {
            // Cancelled between pop and execution start: the ticket is
            // already resolved (and accounted by `Ticket::cancel`) — skip.
            return;
        }
        *phase = TicketPhase::Running;
    }
    let queue_wait = request.submitted.elapsed();
    // Contain panics to this request: the dispatcher thread (and the
    // engine's worker pool, which re-throws kernel panics on this thread)
    // must survive a malformed statement.
    let outcome = match catch_unwind(AssertUnwindSafe(|| run_request(shared, &request))) {
        Ok(Ok(mut output)) => {
            output.queue_wait = queue_wait;
            output.total_wall = request.submitted.elapsed();
            shared.counters.completed.fetch_add(1, Ordering::Relaxed);
            shared.counters.total_wall_nanos.fetch_add(
                u64::try_from(output.total_wall.as_nanos()).unwrap_or(u64::MAX),
                Ordering::Relaxed,
            );
            Ok(output)
        }
        Ok(Err(e)) => {
            shared.counters.failed.fetch_add(1, Ordering::Relaxed);
            Err(ServeError::Query(e))
        }
        Err(payload) => {
            shared.counters.panicked.fetch_add(1, Ordering::Relaxed);
            Err(ServeError::Panicked(panic_message(payload.as_ref())))
        }
    };
    request.ticket.finish(outcome);
}

/// Plans and executes one request on the dispatcher thread.
fn run_request(shared: &ServerShared, request: &QueuedRequest) -> Result<QueryOutput, BqoError> {
    let engine = &shared.engine;
    let config = request
        .options
        .exec_config
        .unwrap_or_else(|| engine.exec_config());
    match &request.statement {
        Statement::Spec { spec, params } => {
            let stmt = match params {
                Some(params) => engine.bind(spec, params, request.choice)?,
                None => engine.prepare(spec, request.choice)?,
            };
            // One source of truth for the override: `config` is passed
            // explicitly to both run variants (the session keeps the
            // engine's defaults).
            let session = engine.session();
            let (result, rows) = if request.options.collect_rows {
                let (result, rows) = session.run_with_rows(&stmt, config)?;
                (result, Some(rows))
            } else {
                (session.run_with(&stmt, config)?, None)
            };
            Ok(QueryOutput {
                result,
                rows,
                cache_status: Some(stmt.cache_status()),
                queue_wait: Duration::ZERO,
                total_wall: Duration::ZERO,
            })
        }
        Statement::Plan { name, graph, plan } => {
            let result = engine.execute_plan_named_with(name, graph, plan, config)?;
            Ok(QueryOutput {
                result,
                rows: None,
                cache_status: None,
                queue_wait: Duration::ZERO,
                total_wall: Duration::ZERO,
            })
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(dead_code)]
    fn assert_send_sync<T: Send + Sync + 'static>() {}

    #[test]
    fn serving_types_are_send_sync() {
        assert_send_sync::<Server>();
        assert_send_sync::<Ticket>();
        assert_send_sync::<ServerConfig>();
        assert_send_sync::<ServerStats>();
    }

    #[test]
    fn config_clamps_degenerate_values() {
        let config = ServerConfig::default()
            .with_max_concurrent_queries(0)
            .with_queue_capacity(0);
        assert_eq!(config.max_concurrent_queries, 1);
        assert_eq!(config.queue_capacity, 1);
        assert_eq!(config.default_timeout, None);
        let config = config.with_default_timeout(Duration::from_millis(5));
        assert_eq!(config.default_timeout, Some(Duration::from_millis(5)));
    }

    #[test]
    fn errors_render_their_cause() {
        let full = SubmitError::QueueFull { capacity: 7 };
        assert!(full.to_string().contains('7'));
        assert!(SubmitError::ShutDown.to_string().contains("shut down"));
        assert!(ServeError::Panicked("boom".into())
            .to_string()
            .contains("boom"));
        assert!(ServeError::Cancelled.to_string().contains("cancelled"));
        assert!(ServeError::TimedOut.to_string().contains("imed out"));
        let query = ServeError::Query(BqoError::planning(
            "q",
            bqo_storage::StorageError::TableNotFound { table: "t".into() },
        ));
        assert!(query.to_string().contains("`q`"));
        use std::error::Error;
        assert!(query.source().is_some());
        assert!(ServeError::Cancelled.source().is_none());
    }

    #[test]
    fn panic_messages_are_extracted() {
        assert_eq!(panic_message(&"boom"), "boom");
        assert_eq!(panic_message(&"boom".to_string()), "boom");
        assert_eq!(panic_message(&42usize), "<non-string panic payload>");
    }
}
