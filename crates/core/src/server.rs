//! Multi-tenant, admission-controlled serving front end over [`Engine`] /
//! [`Session`].
//!
//! [`Session`]: crate::Session
//!
//! A [`Server`] is what turns the engine into a multi-tenant runtime: instead
//! of every caller grabbing a [`Session`] and flooding the executor, clients
//! **submit** [`Request`]s (built with [`Request::builder`]) and the server
//! shapes the traffic —
//!
//! * **Priority/deadline-aware scheduling.** Under the default
//!   [`SchedulingPolicy::PriorityDeadline`], dispatch picks the queued
//!   request with the highest [`QueryOptions::priority`], breaking ties by
//!   earliest deadline and then submission order; [`SchedulingPolicy::Fifo`]
//!   keeps the plain first-in-first-out baseline. At most
//!   [`ServerConfig::max_concurrent_queries`] statements execute at once (a
//!   fixed set of persistent dispatcher threads).
//! * **Per-tenant quotas.** With a [`ServerConfig::tenant_quota`], each named
//!   tenant is bounded in how many requests it may have queued
//!   ([`SubmitError::TenantQuotaExceeded`] at admission) and how many it may
//!   have running at once (enforced at dispatch — other tenants' requests
//!   are picked around a saturated tenant).
//! * **Deadlines.** A request with a [`QueryOptions::deadline`] that expires
//!   while still queued is dropped with [`ServeError::DeadlineExceeded`]
//!   before wasting pool time; one that expires mid-execution is aborted
//!   cooperatively within roughly one morsel, returning the partial
//!   [`bqo_exec::ExecutionMetrics`] it accumulated.
//! * **Bounded-queue backpressure.** The queue holds at most
//!   [`ServerConfig::queue_capacity`] pending requests; submissions beyond
//!   that are rejected immediately with [`SubmitError::QueueFull`].
//! * **Join-handle tickets with mid-flight cancellation.** [`Server::submit`]
//!   returns a [`Ticket`] that [`Ticket::wait`]s for the [`QueryOutput`].
//!   [`Ticket::cancel`] resolves a queued request immediately and aborts a
//!   *running* one cooperatively: a [`bqo_exec::CancelToken`] cloned into the
//!   executor is re-checked at every morsel claim and batch pull, so the
//!   query stops within roughly one morsel and surfaces as
//!   [`ServeError::Cancelled`] with its partial metrics.
//! * **Panic containment.** A statement that panics mid-execution takes down
//!   neither the dispatcher nor the server: the panic is caught and surfaced
//!   through that request's ticket as [`ServeError::Panicked`].
//! * **Graceful shutdown.** [`Server::shutdown`] stops admissions, drains
//!   everything already queued, and joins the dispatchers; it is idempotent
//!   and implied when the last server handle drops.
//! * **Operational visibility.** [`Server::stats`] reports global counters
//!   plus queue-wait and run-time latency histograms ([`LatencyStats`]);
//!   [`Server::stats_for`] reports the same per tenant.
//!
//! Execution itself goes through the engine like any session run: plans come
//! from the shared [`crate::PlanCache`], and parallel sections draw their
//! helper workers from the engine-owned persistent
//! [`bqo_exec::WorkerPool`] — dispatchers are the *query*-level concurrency
//! limit, the pool is the *morsel*-level one.
//!
//! ```
//! use bqo_core::workloads::{star, Scale};
//! use bqo_core::{Engine, OptimizerChoice, Params, Request, Server, ServerConfig};
//!
//! let workload = star::generate(Scale(0.02), 3, 1, 42);
//! let engine = Engine::from_catalog(workload.catalog);
//! let server = Server::new(engine, ServerConfig::default());
//! let template = star::build_param_query("by_bound", 3, &[0]);
//! let request = Request::builder()
//!     .query(&template)
//!     .params(&Params::new().set("bound0", 3i64))
//!     .optimizer(OptimizerChoice::Bqo)
//!     .tenant("dashboards")
//!     .priority(1)
//!     .build()
//!     .unwrap();
//! let ticket = server.submit(request).unwrap();
//! let output = ticket.wait().unwrap();
//! assert!(output.result.output_rows > 0);
//! server.shutdown();
//! ```

use crate::engine::{Engine, RunOptions};
use crate::{BqoError, CacheStatus, OptimizerChoice};
use bqo_exec::{Batch, CancelToken, ExecConfig, ExecutionMetrics, QueryResult};
use bqo_plan::{JoinGraph, Params, PhysicalPlan, QuerySpec};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the dispatcher picks the next queued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulingPolicy {
    /// Strict submission order, ignoring priorities and deadlines (the
    /// baseline the scheduling bench compares against). Tenant concurrency
    /// quotas still apply.
    Fifo,
    /// Pick by highest [`QueryOptions::priority`], then earliest deadline
    /// (requests without one sort last), then submission order.
    #[default]
    PriorityDeadline,
}

/// Uniform per-tenant admission bounds (applied to every *named* tenant;
/// requests without a tenant are exempt).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Maximum requests a tenant may have waiting in the queue; submissions
    /// beyond this fail with [`SubmitError::TenantQuotaExceeded`]. Values
    /// below 1 are treated as 1.
    pub max_queued: usize,
    /// Maximum requests a tenant may have executing at once; further requests
    /// stay queued (other tenants are dispatched around them). Values below 1
    /// are treated as 1.
    pub max_concurrent: usize,
}

impl TenantQuota {
    /// A quota with both bounds (each clamped to at least 1).
    pub fn new(max_queued: usize, max_concurrent: usize) -> Self {
        TenantQuota {
            max_queued: max_queued.max(1),
            max_concurrent: max_concurrent.max(1),
        }
    }
}

/// Traffic-shaping knobs of a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Maximum number of statements executing concurrently (the number of
    /// persistent dispatcher threads). Values below 1 are treated as 1.
    pub max_concurrent_queries: usize,
    /// Maximum number of admitted-but-not-yet-started requests; submissions
    /// beyond this bound fail fast with [`SubmitError::QueueFull`]. Values
    /// below 1 are treated as 1.
    pub queue_capacity: usize,
    /// Default bound applied by [`Ticket::wait`]; `None` (the default) waits
    /// indefinitely. A timed-out wait leaves the request running — a later
    /// [`Ticket::wait_timeout`] can still collect the result.
    pub default_timeout: Option<Duration>,
    /// How dispatch orders the queue (default
    /// [`SchedulingPolicy::PriorityDeadline`]).
    pub policy: SchedulingPolicy,
    /// Per-tenant admission/concurrency bounds; `None` (the default) leaves
    /// tenants unbounded (global bounds still apply).
    pub tenant_quota: Option<TenantQuota>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_concurrent_queries: 4,
            queue_capacity: 128,
            default_timeout: None,
            policy: SchedulingPolicy::default(),
            tenant_quota: None,
        }
    }
}

impl ServerConfig {
    /// The same configuration with a different concurrency limit (clamped to
    /// at least 1).
    pub fn with_max_concurrent_queries(mut self, max_concurrent_queries: usize) -> Self {
        self.max_concurrent_queries = max_concurrent_queries.max(1);
        self
    }

    /// The same configuration with a different pending-queue bound (clamped
    /// to at least 1).
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity.max(1);
        self
    }

    /// The same configuration with a default [`Ticket::wait`] timeout.
    pub fn with_default_timeout(mut self, timeout: Duration) -> Self {
        self.default_timeout = Some(timeout);
        self
    }

    /// The same configuration with a different [`SchedulingPolicy`].
    pub fn with_policy(mut self, policy: SchedulingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The same configuration with a per-tenant quota.
    pub fn with_tenant_quota(mut self, quota: TenantQuota) -> Self {
        self.tenant_quota = Some(quota);
        self
    }
}

/// Per-request scheduling and execution options carried by a [`Request`].
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// The tenant this request is accounted to. Named tenants are subject to
    /// [`ServerConfig::tenant_quota`] and show up in [`Server::stats_for`];
    /// `None` is the anonymous tenant (unbounded, aggregated globally only).
    pub tenant: Option<String>,
    /// Scheduling priority — higher values dispatch first under
    /// [`SchedulingPolicy::PriorityDeadline`]. Default 0.
    pub priority: i32,
    /// Relative deadline, measured from submission. A request still queued
    /// when it expires resolves to [`ServeError::DeadlineExceeded`] without
    /// executing; one caught mid-execution is aborted cooperatively.
    pub deadline: Option<Duration>,
    /// Collect the concatenated output rows into [`QueryOutput::rows`]
    /// (spec requests only; the differential-testing mode of the server
    /// oracle).
    pub collect_rows: bool,
    /// Execution-configuration override for this request; `None` uses the
    /// engine's default configuration.
    pub exec_config: Option<ExecConfig>,
}

/// One unit of work for [`Server::submit`]: what to run (a query spec with
/// optional parameters, or a hand-built plan), which optimizer plans it, and
/// its [`QueryOptions`]. Built with [`Request::builder`].
#[derive(Debug, Clone)]
pub struct Request {
    statement: Statement,
    choice: OptimizerChoice,
    options: QueryOptions,
}

impl Request {
    /// Starts building a request.
    pub fn builder() -> RequestBuilder {
        RequestBuilder::default()
    }

    /// The request's scheduling/execution options.
    pub fn options(&self) -> &QueryOptions {
        &self.options
    }
}

/// Builder for [`Request`] — the single submit surface of the server.
///
/// Exactly one statement source is required: [`RequestBuilder::query`] or
/// [`RequestBuilder::sql`] (each optionally with [`RequestBuilder::params`]),
/// or [`RequestBuilder::plan`].
#[derive(Debug)]
pub struct RequestBuilder {
    statement: Option<Statement>,
    params: Option<Params>,
    choice: OptimizerChoice,
    options: QueryOptions,
}

impl Default for RequestBuilder {
    fn default() -> Self {
        RequestBuilder {
            statement: None,
            params: None,
            choice: OptimizerChoice::Bqo,
            options: QueryOptions::default(),
        }
    }
}

impl RequestBuilder {
    /// Runs a (possibly parameterized) query spec, planned through the
    /// engine's plan cache on the dispatcher. Replaces any previously set
    /// statement.
    pub fn query(mut self, spec: &QuerySpec) -> Self {
        self.statement = Some(Statement::Spec {
            spec: spec.clone(),
            params: None,
        });
        self
    }

    /// Runs a SQL `SELECT` (see the `bqo-sql` crate for the supported
    /// grammar), parsed and bound against the engine's catalog on the
    /// dispatcher. Combine with [`RequestBuilder::params`] for `$param`
    /// templates. Replaces any previously set statement.
    pub fn sql(mut self, text: impl Into<String>) -> Self {
        self.statement = Some(Statement::Sql {
            text: text.into(),
            params: None,
        });
        self
    }

    /// Parameter bindings for a template query set with
    /// [`RequestBuilder::query`] or [`RequestBuilder::sql`].
    pub fn params(mut self, params: &Params) -> Self {
        self.params = Some(params.clone());
        self
    }

    /// Runs a hand-built physical plan (e.g. a specific join order under
    /// study), labelled `name` in errors and stats. Replaces any previously
    /// set statement.
    pub fn plan(mut self, name: impl Into<String>, graph: JoinGraph, plan: PhysicalPlan) -> Self {
        self.statement = Some(Statement::Plan {
            name: name.into(),
            graph,
            plan,
        });
        self
    }

    /// Which optimizer plans a spec request (default
    /// [`OptimizerChoice::Bqo`]; ignored for plan requests).
    pub fn optimizer(mut self, choice: OptimizerChoice) -> Self {
        self.choice = choice;
        self
    }

    /// Accounts the request to a named tenant (see [`QueryOptions::tenant`]).
    pub fn tenant(mut self, tenant: impl Into<String>) -> Self {
        self.options.tenant = Some(tenant.into());
        self
    }

    /// Scheduling priority — higher dispatches first (default 0).
    pub fn priority(mut self, priority: i32) -> Self {
        self.options.priority = priority;
        self
    }

    /// Relative deadline, measured from submission (see
    /// [`QueryOptions::deadline`]).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.options.deadline = Some(deadline);
        self
    }

    /// Collects the concatenated output rows into [`QueryOutput::rows`].
    pub fn collect_rows(mut self) -> Self {
        self.options.collect_rows = true;
        self
    }

    /// Execution-configuration override for this request.
    pub fn exec_config(mut self, config: ExecConfig) -> Self {
        self.options.exec_config = Some(config);
        self
    }

    /// Validates and builds the [`Request`].
    pub fn build(self) -> Result<Request, SubmitError> {
        let statement = match (self.statement, self.params) {
            (None, _) => {
                return Err(SubmitError::InvalidRequest {
                    reason: "a request needs a query or a plan",
                })
            }
            (Some(Statement::Plan { .. }), Some(_)) => {
                return Err(SubmitError::InvalidRequest {
                    reason: "parameters apply only to query-spec requests",
                })
            }
            (Some(Statement::Spec { spec, .. }), params) => Statement::Spec { spec, params },
            (Some(Statement::Sql { text, .. }), params) => Statement::Sql { text, params },
            (Some(plan), None) => plan,
        };
        Ok(Request {
            statement,
            choice: self.choice,
            options: self.options,
        })
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The pending queue already holds `capacity` requests — backpressure:
    /// retry later or shed the request.
    QueueFull {
        /// The configured [`ServerConfig::queue_capacity`].
        capacity: usize,
    },
    /// The request's tenant is at its [`TenantQuota::max_queued`] bound.
    TenantQuotaExceeded,
    /// The request was malformed (see [`Request::builder`]).
    InvalidRequest {
        /// What was wrong with the request.
        reason: &'static str,
    },
    /// The server is shutting down (or already shut down).
    ShutDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "server queue is full ({capacity} pending requests)")
            }
            SubmitError::TenantQuotaExceeded => {
                write!(f, "tenant is at its queued-request quota")
            }
            SubmitError::InvalidRequest { reason } => write!(f, "invalid request: {reason}"),
            SubmitError::ShutDown => write!(f, "server is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an admitted request produced no [`QueryOutput`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Planning or execution failed (the usual error path, with query name
    /// and phase attached).
    Query(BqoError),
    /// Execution panicked on the dispatcher; the payload's message. The
    /// dispatcher survived and keeps serving other requests.
    Panicked(String),
    /// The request was cancelled via [`Ticket::cancel`]. `partial` carries
    /// the metrics a mid-flight cancellation accumulated before the abort
    /// (`None` when the request never started).
    Cancelled {
        /// Metrics gathered before the abort, for requests cancelled
        /// mid-execution.
        partial: Option<ExecutionMetrics>,
    },
    /// The request's own [`QueryOptions::deadline`] expired — while queued
    /// (`partial` is `None`) or mid-execution (`partial` carries the work
    /// done before the abort).
    DeadlineExceeded {
        /// Metrics gathered before the abort, for requests aborted
        /// mid-execution.
        partial: Option<ExecutionMetrics>,
    },
    /// [`Ticket::wait`]'s bound elapsed before the request finished. The
    /// request keeps running; a later wait can still collect its result.
    TimedOut,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Query(e) => write!(f, "{e}"),
            ServeError::Panicked(msg) => write!(f, "query execution panicked: {msg}"),
            ServeError::Cancelled { partial: None } => {
                write!(f, "request was cancelled before it started")
            }
            ServeError::Cancelled { partial: Some(_) } => {
                write!(f, "request was cancelled mid-execution")
            }
            ServeError::DeadlineExceeded { .. } => {
                write!(f, "request deadline exceeded")
            }
            ServeError::TimedOut => write!(f, "timed out waiting for the request to finish"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Query(e) => Some(e),
            _ => None,
        }
    }
}

/// The result of one served request.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// Row count and execution metrics.
    pub result: QueryResult,
    /// Concatenated output rows, when requested via
    /// [`QueryOptions::collect_rows`] (spec and SQL requests; hand-built
    /// plan requests never carry rows).
    pub rows: Option<Batch>,
    /// How the plan was obtained from the plan cache (`None` for hand-built
    /// plan requests).
    pub cache_status: Option<CacheStatus>,
    /// Time the request spent queued before a dispatcher picked it up.
    pub queue_wait: Duration,
    /// Submit-to-completion wall time (queueing + planning + execution).
    pub total_wall: Duration,
}

/// What a queued request executes.
#[derive(Debug, Clone)]
enum Statement {
    /// A (possibly parameterized) query spec, planned through the engine's
    /// plan cache on the dispatcher.
    Spec {
        spec: QuerySpec,
        params: Option<Params>,
    },
    /// A SQL `SELECT`, parsed and bound against the engine's catalog on the
    /// dispatcher, then planned through the plan cache like a spec request.
    Sql {
        text: String,
        params: Option<Params>,
    },
    /// A hand-built physical plan (e.g. a specific join order under study).
    Plan {
        name: String,
        graph: JoinGraph,
        plan: PhysicalPlan,
    },
}

// One instance per ticket, behind its own Mutex: the size skew between the
// marker phases and the carried outcome is irrelevant here.
#[allow(clippy::large_enum_variant)]
enum TicketPhase {
    Queued,
    Running,
    Finished(Result<QueryOutput, ServeError>),
}

struct TicketShared {
    phase: Mutex<TicketPhase>,
    done: Condvar,
}

impl TicketShared {
    fn new() -> Self {
        TicketShared {
            phase: Mutex::new(TicketPhase::Queued),
            done: Condvar::new(),
        }
    }

    /// Resolves the ticket unless it already is — the first outcome wins
    /// (e.g. a cancel racing the dispatcher's deadline sweep). Returns
    /// whether this call resolved it.
    fn finish(&self, outcome: Result<QueryOutput, ServeError>) -> bool {
        let mut phase = self.phase.lock().expect("ticket poisoned");
        if matches!(*phase, TicketPhase::Finished(_)) {
            return false;
        }
        *phase = TicketPhase::Finished(outcome);
        self.done.notify_all();
        true
    }
}

/// A join-handle for one submitted request: wait for the output (with an
/// optional bound), poll, or cancel it — queued *or* mid-flight. Dropping a
/// ticket detaches from the request — it still executes.
pub struct Ticket {
    shared: Arc<TicketShared>,
    default_timeout: Option<Duration>,
    /// Back-reference for [`Ticket::cancel`] and deadline-expiry resolution:
    /// a cancelled/expired queued request is removed from the server queue
    /// immediately, freeing its admission slot. Weak so outstanding tickets
    /// never keep a shut-down server alive.
    server: Weak<ServerShared>,
    /// The request's cancel token — fired by [`Ticket::cancel`] on a running
    /// request; execution notices at its next morsel claim or batch pull.
    cancel: CancelToken,
    /// The request's absolute deadline, if it has one.
    deadline: Option<Instant>,
    /// The request's tenant, for per-tenant accounting on cancel/expiry.
    tenant: Option<String>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("finished", &self.is_finished())
            .finish()
    }
}

impl Ticket {
    /// Blocks until the request finishes and returns its output, honoring
    /// the server's [`ServerConfig::default_timeout`] (no bound when the
    /// server has none). Waiting repeatedly is fine — the outcome is
    /// retained, and a wait that returns [`ServeError::TimedOut`] leaves the
    /// request running.
    pub fn wait(&self) -> Result<QueryOutput, ServeError> {
        self.wait_deadline(self.default_timeout.map(|t| Instant::now() + t))
    }

    /// Blocks until the request finishes or `timeout` elapses. A request
    /// whose own deadline has already passed while still queued resolves to
    /// [`ServeError::DeadlineExceeded`] immediately instead of blocking for
    /// the full bound.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<QueryOutput, ServeError> {
        self.wait_deadline(Some(Instant::now() + timeout))
    }

    fn wait_deadline(&self, deadline: Option<Instant>) -> Result<QueryOutput, ServeError> {
        let mut phase = self.shared.phase.lock().expect("ticket poisoned");
        loop {
            if let TicketPhase::Finished(outcome) = &*phase {
                return outcome.clone();
            }
            let queued = matches!(*phase, TicketPhase::Queued);
            // A queued request whose own deadline already passed can never
            // produce output — resolve it now instead of blocking the caller
            // (the dispatcher sweep would do the same at its next dispatch).
            if queued && self.deadline.is_some_and(|d| Instant::now() >= d) {
                let outcome = Err(ServeError::DeadlineExceeded { partial: None });
                *phase = TicketPhase::Finished(outcome.clone());
                self.shared.done.notify_all();
                drop(phase);
                self.discard_expired_entry();
                return outcome;
            }
            // Wake at the earlier of the caller's bound and (while queued)
            // the request's own deadline. A running request needs no
            // deadline wake-up: the executor aborts it via the cancel token
            // and the dispatcher resolves the ticket.
            let request_deadline = if queued { self.deadline } else { None };
            let wake = match (deadline, request_deadline) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            phase = match wake {
                None => self.shared.done.wait(phase).expect("ticket poisoned"),
                Some(wake) => {
                    let now = Instant::now();
                    if now >= wake {
                        if deadline.is_some_and(|d| now >= d) {
                            return Err(ServeError::TimedOut);
                        }
                        // Only the request's own deadline passed; the loop
                        // re-checks it and resolves the ticket.
                        continue;
                    }
                    self.shared
                        .done
                        .wait_timeout(phase, wake - now)
                        .expect("ticket poisoned")
                        .0
                }
            };
        }
    }

    /// The request's outcome if it already finished, without blocking.
    pub fn try_wait(&self) -> Option<Result<QueryOutput, ServeError>> {
        let phase = self.shared.phase.lock().expect("ticket poisoned");
        match &*phase {
            TicketPhase::Finished(outcome) => Some(outcome.clone()),
            _ => None,
        }
    }

    /// Whether the request has finished (successfully or not).
    pub fn is_finished(&self) -> bool {
        matches!(
            *self.shared.phase.lock().expect("ticket poisoned"),
            TicketPhase::Finished(_)
        )
    }

    /// Cancels the request. A *queued* request resolves to
    /// [`ServeError::Cancelled`] immediately and frees its admission slot. A
    /// *running* request is aborted cooperatively: its cancel token fires,
    /// execution stops within roughly one morsel, and the ticket resolves to
    /// [`ServeError::Cancelled`] carrying the partial metrics. Returns `true`
    /// if cancellation was initiated (or the abort is in flight), `false` if
    /// the request already finished.
    pub fn cancel(&self) -> bool {
        enum Was {
            Queued,
            Running,
        }
        let was = {
            let mut phase = self.shared.phase.lock().expect("ticket poisoned");
            match &*phase {
                TicketPhase::Finished(_) => return false,
                TicketPhase::Queued => {
                    *phase = TicketPhase::Finished(Err(ServeError::Cancelled { partial: None }));
                    self.shared.done.notify_all();
                    Was::Queued
                }
                TicketPhase::Running => Was::Running,
            }
        };
        match was {
            Was::Queued => {
                if let Some(server) = self.server.upgrade() {
                    {
                        let mut state = server.state.lock().expect("server queue poisoned");
                        state.remove_queued(&self.shared);
                    }
                    server.counters.cancelled.fetch_add(1, Ordering::Relaxed); // ORDERING: monotonic stats counter; needs no synchronization
                    if let Some(tenant) = self.tenant.as_deref() {
                        server
                            .tenant_cell(tenant)
                            .cancelled
                            .fetch_add(1, Ordering::Relaxed); // ORDERING: monotonic stats counter; needs no synchronization
                    }
                }
            }
            // The dispatcher owns the accounting for a mid-flight abort: it
            // resolves the ticket (with partial metrics) when execution
            // notices the token.
            Was::Running => self.cancel.cancel(),
        }
        true
    }

    /// Removes this ticket's entry from the server queue after its deadline
    /// was found expired by [`Ticket::wait_deadline`] (which already resolved
    /// the ticket).
    fn discard_expired_entry(&self) {
        if let Some(server) = self.server.upgrade() {
            {
                let mut state = server.state.lock().expect("server queue poisoned");
                state.remove_queued(&self.shared);
            }
            server
                .counters
                .deadline_expired
                .fetch_add(1, Ordering::Relaxed); // ORDERING: monotonic stats counter; needs no synchronization
            if let Some(tenant) = self.tenant.as_deref() {
                server
                    .tenant_cell(tenant)
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed); // ORDERING: monotonic stats counter; needs no synchronization
            }
        }
    }
}

struct QueuedRequest {
    statement: Statement,
    choice: OptimizerChoice,
    options: QueryOptions,
    /// Absolute deadline derived from [`QueryOptions::deadline`] at
    /// submission.
    deadline: Option<Instant>,
    /// The request's cancel token (deadline baked in), cloned into the
    /// executor by the dispatcher.
    cancel: CancelToken,
    /// Submission sequence number — the FIFO tiebreak.
    seq: u64,
    ticket: Arc<TicketShared>,
    submitted: Instant,
}

/// Live queued/running counts for one tenant (entries are dropped when both
/// reach zero).
#[derive(Default)]
struct TenantUsage {
    queued: usize,
    running: usize,
}

struct QueueState {
    queue: VecDeque<QueuedRequest>,
    accepting: bool,
    paused: bool,
    running: usize,
    usage: HashMap<String, TenantUsage>,
    next_seq: u64,
}

impl QueueState {
    /// Books a request out of the queue without dispatching it
    /// (cancellation / deadline expiry).
    fn note_dequeued(&mut self, request: &QueuedRequest) {
        if let Some(tenant) = request.options.tenant.as_deref() {
            if let Some(usage) = self.usage.get_mut(tenant) {
                usage.queued = usage.queued.saturating_sub(1);
                if usage.queued == 0 && usage.running == 0 {
                    self.usage.remove(tenant);
                }
            }
        }
    }

    /// Books a request out of the queue and into execution.
    fn note_dispatched(&mut self, request: &QueuedRequest) {
        self.running += 1;
        if let Some(tenant) = request.options.tenant.as_deref() {
            let usage = self.usage.entry(tenant.to_string()).or_default();
            usage.queued = usage.queued.saturating_sub(1);
            usage.running += 1;
        }
    }

    /// Books a dispatched request's completion.
    fn note_finished(&mut self, tenant: Option<&str>) {
        self.running -= 1;
        if let Some(tenant) = tenant {
            if let Some(usage) = self.usage.get_mut(tenant) {
                usage.running = usage.running.saturating_sub(1);
                if usage.queued == 0 && usage.running == 0 {
                    self.usage.remove(tenant);
                }
            }
        }
    }

    /// Removes the queue entry owned by `ticket`, if still present, with
    /// usage bookkeeping.
    fn remove_queued(&mut self, ticket: &Arc<TicketShared>) {
        if let Some(pos) = self
            .queue
            .iter()
            .position(|r| Arc::ptr_eq(&r.ticket, ticket))
        {
            let request = self.queue.remove(pos).expect("position in bounds");
            self.note_dequeued(&request);
        }
    }
}

/// Fixed power-of-two-microsecond latency buckets with atomic counters:
/// `record` is lock-free, `snapshot` derives approximate p50/p95/p99 (each
/// reported as its bucket's upper bound).
struct LatencyHistogram {
    /// `buckets[b]` counts samples with `2^(b-1) <= micros < 2^b`
    /// (bucket 0: sub-microsecond; the last bucket is the overflow).
    buckets: [AtomicU64; LatencyHistogram::BUCKETS],
    total_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl LatencyHistogram {
    /// 32 power-of-two buckets reach ~2^31 µs ≈ 36 minutes before clamping.
    const BUCKETS: usize = 32;

    fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            total_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }

    fn record(&self, sample: Duration) {
        let micros = u64::try_from(sample.as_micros()).unwrap_or(u64::MAX);
        let bucket = (64 - micros.leading_zeros() as usize).min(Self::BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed); // ORDERING: monotonic stats counter; needs no synchronization
        let nanos = u64::try_from(sample.as_nanos()).unwrap_or(u64::MAX);
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed); // ORDERING: monotonic stats counter; needs no synchronization
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed); // ORDERING: running max over independent samples; relaxed suffices
    }

    fn snapshot(&self) -> LatencyStats {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed)) // ORDERING: stats snapshot read; a recent value suffices
            .collect();
        let count: u64 = counts.iter().sum();
        if count == 0 {
            return LatencyStats::default();
        }
        let quantile = |q: f64| -> Duration {
            let target = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (bucket, &n) in counts.iter().enumerate() {
                seen += n;
                if seen >= target {
                    // Upper bound of bucket b is 2^b µs (bucket 0: 1 µs).
                    return Duration::from_micros(1u64 << bucket.min(63));
                }
            }
            Duration::from_micros(1u64 << (Self::BUCKETS - 1))
        };
        LatencyStats {
            count,
            mean: Duration::from_nanos(self.total_nanos.load(Ordering::Relaxed) / count), // ORDERING: stats snapshot read; a recent value suffices
            max: Duration::from_nanos(self.max_nanos.load(Ordering::Relaxed)), // ORDERING: stats snapshot read; a recent value suffices
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
        }
    }
}

/// A point-in-time latency summary derived from a server histogram. The
/// quantiles are approximate: each is the upper bound of its power-of-two
/// microsecond bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyStats {
    /// Samples recorded.
    pub count: u64,
    /// Exact arithmetic mean.
    pub mean: Duration,
    /// Exact maximum.
    pub max: Duration,
    /// Approximate median.
    pub p50: Duration,
    /// Approximate 95th percentile.
    pub p95: Duration,
    /// Approximate 99th percentile.
    pub p99: Duration,
}

#[derive(Default)]
struct ServerCounters {
    admitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    cancelled: AtomicU64,
    deadline_expired: AtomicU64,
    failed: AtomicU64,
    panicked: AtomicU64,
    total_wall_nanos: AtomicU64,
}

/// Monotonic per-tenant counters and histograms (live queued/running counts
/// come from the queue state).
struct TenantCell {
    admitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    cancelled: AtomicU64,
    deadline_expired: AtomicU64,
    failed: AtomicU64,
    queue_wait: LatencyHistogram,
    run_time: LatencyHistogram,
}

impl TenantCell {
    fn new() -> Self {
        TenantCell {
            admitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            queue_wait: LatencyHistogram::new(),
            run_time: LatencyHistogram::new(),
        }
    }
}

struct ServerShared {
    engine: Engine,
    config: ServerConfig,
    state: Mutex<QueueState>,
    /// Dispatchers park here while no request is dispatchable (queue empty,
    /// server paused, or every queued tenant at its concurrency quota).
    work: Condvar,
    counters: ServerCounters,
    queue_wait: LatencyHistogram,
    run_time: LatencyHistogram,
    /// Per-tenant stats cells, created on first touch. Lock order: may be
    /// taken while holding `state`, never the other way around.
    tenants: Mutex<HashMap<String, Arc<TenantCell>>>,
}

impl ServerShared {
    fn tenant_cell(&self, tenant: &str) -> Arc<TenantCell> {
        let mut tenants = self.tenants.lock().expect("tenant stats poisoned");
        Arc::clone(
            tenants
                .entry(tenant.to_string())
                .or_insert_with(|| Arc::new(TenantCell::new())),
        )
    }
}

/// A point-in-time snapshot of a server's traffic counters, as returned by
/// [`Server::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests accepted into the queue.
    pub admitted: u64,
    /// Requests that finished with a [`QueryOutput`].
    pub completed: u64,
    /// Submissions rejected (queue full, tenant quota, or shut down).
    pub rejected: u64,
    /// Admitted requests cancelled — while queued or mid-flight.
    pub cancelled: u64,
    /// Admitted requests dropped or aborted because their deadline expired.
    pub deadline_expired: u64,
    /// Admitted requests that failed planning or execution.
    pub failed: u64,
    /// Admitted requests whose execution panicked (contained per request).
    pub panicked: u64,
    /// Requests currently waiting in the queue.
    pub queue_depth: usize,
    /// Requests currently executing on dispatchers.
    pub running: usize,
    /// Cumulative submit-to-completion wall time over completed requests.
    pub total_wall: Duration,
    /// Queue-wait latency distribution over dispatched requests.
    pub queue_wait: LatencyStats,
    /// Execution-time distribution over completed requests.
    pub run_time: LatencyStats,
}

/// A point-in-time snapshot of one tenant's traffic, as returned by
/// [`Server::stats_for`]. Unknown tenants report all zeros.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantStats {
    /// Requests this tenant got admitted.
    pub admitted: u64,
    /// Requests that finished with a [`QueryOutput`].
    pub completed: u64,
    /// Submissions rejected by the tenant quota.
    pub rejected: u64,
    /// Requests cancelled — while queued or mid-flight.
    pub cancelled: u64,
    /// Requests dropped or aborted because their deadline expired.
    pub deadline_expired: u64,
    /// Requests that failed planning or execution.
    pub failed: u64,
    /// Requests currently waiting in the queue.
    pub queued: usize,
    /// Requests currently executing.
    pub running: usize,
    /// Queue-wait latency distribution over dispatched requests.
    pub queue_wait: LatencyStats,
    /// Execution-time distribution over completed requests.
    pub run_time: LatencyStats,
}

/// Owner of the dispatcher threads: joined at [`Server::shutdown`] or when
/// the last server handle drops.
struct ServerOwner {
    shared: Arc<ServerShared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl ServerOwner {
    fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock().expect("server queue poisoned");
            state.accepting = false;
        }
        self.shared.work.notify_all();
        let handles = std::mem::take(&mut *self.handles.lock().expect("server queue poisoned"));
        for handle in handles {
            // Dispatchers contain request panics; the loop itself never
            // panics.
            handle.join().expect("server dispatcher panicked");
        }
    }
}

impl Drop for ServerOwner {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The multi-tenant serving front end (see the [module docs](self)).
/// Cloning a `Server` is a cheap handle copy; all clones share the queue,
/// dispatchers and counters. The dispatchers are joined at the first
/// [`Server::shutdown`] (or when the last handle drops).
#[derive(Clone)]
pub struct Server {
    shared: Arc<ServerShared>,
    owner: Arc<ServerOwner>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("config", &self.shared.config)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Server {
    /// Starts a server over an engine: spawns
    /// [`ServerConfig::max_concurrent_queries`] persistent dispatcher
    /// threads and begins accepting submissions immediately.
    pub fn new(engine: Engine, config: ServerConfig) -> Self {
        let config = config
            .with_max_concurrent_queries(config.max_concurrent_queries)
            .with_queue_capacity(config.queue_capacity);
        let shared = Arc::new(ServerShared {
            engine,
            config,
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                accepting: true,
                paused: false,
                running: 0,
                usage: HashMap::new(),
                next_seq: 0,
            }),
            work: Condvar::new(),
            counters: ServerCounters::default(),
            queue_wait: LatencyHistogram::new(),
            run_time: LatencyHistogram::new(),
            tenants: Mutex::new(HashMap::new()),
        });
        let handles = (0..config.max_concurrent_queries)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bqo-dispatch-{i}"))
                    .spawn(move || dispatcher_loop(shared))
                    .expect("spawning server dispatcher")
            })
            .collect();
        Server {
            owner: Arc::new(ServerOwner {
                shared: Arc::clone(&shared),
                handles: Mutex::new(handles),
            }),
            shared,
        }
    }

    /// The engine this server executes against.
    pub fn engine(&self) -> &Engine {
        &self.shared.engine
    }

    /// The server's traffic-shaping configuration.
    pub fn config(&self) -> ServerConfig {
        self.shared.config
    }

    /// Submits a [`Request`] (built with [`Request::builder`]) for
    /// execution. Returns the request's [`Ticket`] immediately, or a
    /// [`SubmitError`] when admission control rejects it: the server is shut
    /// down, the queue is full, or the request's tenant is at its
    /// [`TenantQuota::max_queued`] bound.
    pub fn submit(&self, request: Request) -> Result<Ticket, SubmitError> {
        let Request {
            statement,
            choice,
            options,
        } = request;
        let tenant = options.tenant.clone();
        let submitted = Instant::now();
        let deadline = options.deadline.map(|d| submitted + d);
        let cancel = match deadline {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::new(),
        };
        let ticket = Arc::new(TicketShared::new());
        {
            let mut state = self.shared.state.lock().expect("server queue poisoned");
            if !state.accepting {
                self.shared
                    .counters
                    .rejected
                    .fetch_add(1, Ordering::Relaxed); // ORDERING: monotonic stats counter; needs no synchronization
                return Err(SubmitError::ShutDown);
            }
            if state.queue.len() >= self.shared.config.queue_capacity {
                self.shared
                    .counters
                    .rejected
                    .fetch_add(1, Ordering::Relaxed); // ORDERING: monotonic stats counter; needs no synchronization
                return Err(SubmitError::QueueFull {
                    capacity: self.shared.config.queue_capacity,
                });
            }
            if let (Some(quota), Some(tenant)) =
                (&self.shared.config.tenant_quota, tenant.as_deref())
            {
                let queued = state.usage.get(tenant).map_or(0, |u| u.queued);
                if queued >= quota.max_queued {
                    self.shared
                        .counters
                        .rejected
                        .fetch_add(1, Ordering::Relaxed); // ORDERING: monotonic stats counter; needs no synchronization
                    self.shared
                        .tenant_cell(tenant)
                        .rejected
                        .fetch_add(1, Ordering::Relaxed); // ORDERING: monotonic stats counter; needs no synchronization
                    return Err(SubmitError::TenantQuotaExceeded);
                }
            }
            let seq = state.next_seq;
            state.next_seq += 1;
            if let Some(tenant) = tenant.as_deref() {
                state.usage.entry(tenant.to_string()).or_default().queued += 1;
            }
            state.queue.push_back(QueuedRequest {
                statement,
                choice,
                options,
                deadline,
                cancel: cancel.clone(),
                seq,
                ticket: Arc::clone(&ticket),
                submitted,
            });
            self.shared
                .counters
                .admitted
                .fetch_add(1, Ordering::Relaxed); // ORDERING: monotonic stats counter; needs no synchronization
            if let Some(tenant) = tenant.as_deref() {
                self.shared
                    .tenant_cell(tenant)
                    .admitted
                    .fetch_add(1, Ordering::Relaxed); // ORDERING: monotonic stats counter; needs no synchronization
            }
        }
        self.shared.work.notify_one();
        Ok(Ticket {
            shared: ticket,
            default_timeout: self.shared.config.default_timeout,
            server: Arc::downgrade(&self.shared),
            cancel,
            deadline,
            tenant,
        })
    }

    /// Pauses dispatching: admitted requests stay queued (admission control —
    /// including [`SubmitError::QueueFull`] backpressure — remains active).
    /// An operational drain/maintenance switch; [`Server::resume`] restarts
    /// dispatching. Shutdown while paused still drains the queue.
    pub fn pause(&self) {
        let mut state = self.shared.state.lock().expect("server queue poisoned");
        state.paused = true;
    }

    /// Resumes dispatching after [`Server::pause`].
    pub fn resume(&self) {
        {
            let mut state = self.shared.state.lock().expect("server queue poisoned");
            state.paused = false;
        }
        self.shared.work.notify_all();
    }

    /// A point-in-time snapshot of the server's counters, occupancy and
    /// latency histograms.
    pub fn stats(&self) -> ServerStats {
        let (queue_depth, running) = {
            let state = self.shared.state.lock().expect("server queue poisoned");
            (state.queue.len(), state.running)
        };
        let c = &self.shared.counters;
        ServerStats {
            admitted: c.admitted.load(Ordering::Relaxed), // ORDERING: stats snapshot read; a recent value suffices
            completed: c.completed.load(Ordering::Relaxed), // ORDERING: stats snapshot read; a recent value suffices
            rejected: c.rejected.load(Ordering::Relaxed), // ORDERING: stats snapshot read; a recent value suffices
            cancelled: c.cancelled.load(Ordering::Relaxed), // ORDERING: stats snapshot read; a recent value suffices
            deadline_expired: c.deadline_expired.load(Ordering::Relaxed), // ORDERING: stats snapshot read; a recent value suffices
            failed: c.failed.load(Ordering::Relaxed), // ORDERING: stats snapshot read; a recent value suffices
            panicked: c.panicked.load(Ordering::Relaxed), // ORDERING: stats snapshot read; a recent value suffices
            queue_depth,
            running,
            total_wall: Duration::from_nanos(c.total_wall_nanos.load(Ordering::Relaxed)), // ORDERING: stats snapshot read; a recent value suffices
            queue_wait: self.shared.queue_wait.snapshot(),
            run_time: self.shared.run_time.snapshot(),
        }
    }

    /// A point-in-time snapshot of one tenant's counters, occupancy and
    /// latency histograms. A tenant the server has never seen reports all
    /// zeros.
    pub fn stats_for(&self, tenant: &str) -> TenantStats {
        let (queued, running) = {
            let state = self.shared.state.lock().expect("server queue poisoned");
            state
                .usage
                .get(tenant)
                .map_or((0, 0), |u| (u.queued, u.running))
        };
        let cell = {
            let tenants = self.shared.tenants.lock().expect("tenant stats poisoned");
            tenants.get(tenant).cloned()
        };
        match cell {
            Some(cell) => TenantStats {
                admitted: cell.admitted.load(Ordering::Relaxed), // ORDERING: stats snapshot read; a recent value suffices
                completed: cell.completed.load(Ordering::Relaxed), // ORDERING: stats snapshot read; a recent value suffices
                rejected: cell.rejected.load(Ordering::Relaxed), // ORDERING: stats snapshot read; a recent value suffices
                cancelled: cell.cancelled.load(Ordering::Relaxed), // ORDERING: stats snapshot read; a recent value suffices
                deadline_expired: cell.deadline_expired.load(Ordering::Relaxed), // ORDERING: stats snapshot read; a recent value suffices
                failed: cell.failed.load(Ordering::Relaxed), // ORDERING: stats snapshot read; a recent value suffices
                queued,
                running,
                queue_wait: cell.queue_wait.snapshot(),
                run_time: cell.run_time.snapshot(),
            },
            None => TenantStats {
                queued,
                running,
                ..TenantStats::default()
            },
        }
    }

    /// Stops accepting new submissions, drains everything already queued,
    /// and joins the dispatcher threads. Idempotent; implied when the last
    /// server handle drops. Submissions after shutdown fail with
    /// [`SubmitError::ShutDown`].
    pub fn shutdown(&self) {
        self.owner.shutdown();
    }
}

/// Resolves and removes every queued request whose deadline has passed.
/// Called under the state lock at each dispatch.
fn expire_queued(shared: &ServerShared, state: &mut QueueState) {
    let now = Instant::now();
    let mut i = 0;
    while i < state.queue.len() {
        if state.queue[i].deadline.is_some_and(|d| d <= now) {
            let request = state.queue.remove(i).expect("index in bounds");
            state.note_dequeued(&request);
            // finish() may lose to a concurrent cancel or a waiter's own
            // expiry check; whoever wins books the counter.
            if request
                .ticket
                .finish(Err(ServeError::DeadlineExceeded { partial: None }))
            {
                shared
                    .counters
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed); // ORDERING: monotonic stats counter; needs no synchronization
                if let Some(tenant) = request.options.tenant.as_deref() {
                    shared
                        .tenant_cell(tenant)
                        .deadline_expired
                        .fetch_add(1, Ordering::Relaxed); // ORDERING: monotonic stats counter; needs no synchronization
                }
            }
        } else {
            i += 1;
        }
    }
}

/// Index of the next dispatchable queued request under the configured
/// policy, or `None` when nothing is eligible (empty queue or every queued
/// tenant at its concurrency quota).
fn pick_next(config: &ServerConfig, state: &QueueState) -> Option<usize> {
    let eligible = |request: &QueuedRequest| -> bool {
        match (&config.tenant_quota, request.options.tenant.as_deref()) {
            (Some(quota), Some(tenant)) => state
                .usage
                .get(tenant)
                .is_none_or(|u| u.running < quota.max_concurrent),
            _ => true,
        }
    };
    match config.policy {
        SchedulingPolicy::Fifo => state.queue.iter().position(eligible),
        SchedulingPolicy::PriorityDeadline => {
            let mut best: Option<(usize, &QueuedRequest)> = None;
            for (i, request) in state.queue.iter().enumerate() {
                if !eligible(request) {
                    continue;
                }
                let beats = match best {
                    None => true,
                    Some((_, cur)) => beats(request, cur),
                };
                if beats {
                    best = Some((i, request));
                }
            }
            best.map(|(i, _)| i)
        }
    }
}

/// Whether `a` should dispatch before `b`: higher priority, then earlier
/// deadline (no deadline sorts last), then submission order.
fn beats(a: &QueuedRequest, b: &QueuedRequest) -> bool {
    if a.options.priority != b.options.priority {
        return a.options.priority > b.options.priority;
    }
    match (a.deadline, b.deadline) {
        (Some(da), Some(db)) if da != db => da < db,
        (Some(_), None) => true,
        (None, Some(_)) => false,
        _ => a.seq < b.seq,
    }
}

fn dispatcher_loop(shared: Arc<ServerShared>) {
    loop {
        let request = {
            let mut state = shared.state.lock().expect("server queue poisoned");
            loop {
                // A paused server holds requests in the queue — unless it is
                // shutting down, in which case draining wins.
                if !state.paused || !state.accepting {
                    expire_queued(&shared, &mut state);
                    if let Some(index) = pick_next(&shared.config, &state) {
                        let request = state.queue.remove(index).expect("picked index exists");
                        state.note_dispatched(&request);
                        break request;
                    }
                    if !state.accepting && state.queue.is_empty() {
                        return;
                    }
                }
                state = shared.work.wait(state).expect("server queue poisoned");
            }
        };
        let tenant = request.options.tenant.clone();
        serve_one(&shared, request);
        {
            let mut state = shared.state.lock().expect("server queue poisoned");
            state.note_finished(tenant.as_deref());
        }
        // A completion may unblock a quota-gated tenant (and, at shutdown,
        // lets draining dispatchers re-check for exit).
        shared.work.notify_all();
    }
}

/// Executes one dequeued request and resolves its ticket.
fn serve_one(shared: &ServerShared, request: QueuedRequest) {
    {
        let mut phase = request.ticket.phase.lock().expect("ticket poisoned");
        if matches!(*phase, TicketPhase::Finished(_)) {
            // Cancelled/expired between pop and execution start: the ticket
            // is already resolved (and accounted by whoever resolved it).
            return;
        }
        *phase = TicketPhase::Running;
    }
    let queue_wait = request.submitted.elapsed();
    shared.queue_wait.record(queue_wait);
    let tenant_cell = request
        .options
        .tenant
        .as_deref()
        .map(|t| shared.tenant_cell(t));
    if let Some(cell) = &tenant_cell {
        cell.queue_wait.record(queue_wait);
    }
    let run_start = Instant::now();
    // Contain panics to this request: the dispatcher thread (and the
    // engine's worker pool, which re-throws kernel panics on this thread)
    // must survive a malformed statement.
    let outcome = match catch_unwind(AssertUnwindSafe(|| run_request(shared, &request))) {
        Ok(Ok(mut output)) => {
            output.queue_wait = queue_wait;
            output.total_wall = request.submitted.elapsed();
            let run_time = run_start.elapsed();
            shared.run_time.record(run_time);
            shared.counters.completed.fetch_add(1, Ordering::Relaxed); // ORDERING: monotonic stats counter; needs no synchronization
            shared.counters.total_wall_nanos.fetch_add(
                u64::try_from(output.total_wall.as_nanos()).unwrap_or(u64::MAX),
                Ordering::Relaxed, // ORDERING: monotonic stats counter; needs no synchronization
            );
            if let Some(cell) = &tenant_cell {
                cell.completed.fetch_add(1, Ordering::Relaxed); // ORDERING: monotonic stats counter; needs no synchronization
                cell.run_time.record(run_time);
            }
            Ok(output)
        }
        Ok(Err(mut e)) if e.is_cancelled() => {
            let partial = e.take_partial_metrics();
            if request.cancel.cancel_requested() {
                shared.counters.cancelled.fetch_add(1, Ordering::Relaxed); // ORDERING: monotonic stats counter; needs no synchronization
                if let Some(cell) = &tenant_cell {
                    cell.cancelled.fetch_add(1, Ordering::Relaxed); // ORDERING: monotonic stats counter; needs no synchronization
                }
                Err(ServeError::Cancelled { partial })
            } else {
                shared
                    .counters
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed); // ORDERING: monotonic stats counter; needs no synchronization
                if let Some(cell) = &tenant_cell {
                    cell.deadline_expired.fetch_add(1, Ordering::Relaxed); // ORDERING: monotonic stats counter; needs no synchronization
                }
                Err(ServeError::DeadlineExceeded { partial })
            }
        }
        Ok(Err(e)) => {
            shared.counters.failed.fetch_add(1, Ordering::Relaxed); // ORDERING: monotonic stats counter; needs no synchronization
            if let Some(cell) = &tenant_cell {
                cell.failed.fetch_add(1, Ordering::Relaxed); // ORDERING: monotonic stats counter; needs no synchronization
            }
            Err(ServeError::Query(e))
        }
        Err(payload) => {
            shared.counters.panicked.fetch_add(1, Ordering::Relaxed); // ORDERING: monotonic stats counter; needs no synchronization
            Err(ServeError::Panicked(panic_message(payload.as_ref())))
        }
    };
    request.ticket.finish(outcome);
}

/// Plans and executes one request on the dispatcher thread, observing the
/// request's cancel token throughout execution.
fn run_request(shared: &ServerShared, request: &QueuedRequest) -> Result<QueryOutput, BqoError> {
    let engine = &shared.engine;
    let config = request
        .options
        .exec_config
        .unwrap_or_else(|| engine.exec_config());
    // Executes a statement prepared on the dispatcher (spec or SQL paths).
    let execute_stmt = |stmt: crate::PreparedStatement| -> Result<QueryOutput, BqoError> {
        let mut options = RunOptions::new()
            .with_exec_config(config)
            .with_cancel_token(request.cancel.clone());
        if request.options.collect_rows {
            options = options.collecting_rows();
        }
        let out = engine.session().execute(&stmt, options)?;
        Ok(QueryOutput {
            result: out.result,
            rows: out.rows,
            cache_status: Some(out.cache_status),
            queue_wait: Duration::ZERO,
            total_wall: Duration::ZERO,
        })
    };
    match &request.statement {
        Statement::Spec { spec, params } => {
            let stmt = match params {
                Some(params) => engine.bind(spec, params, request.choice)?,
                None => engine.prepare(spec, request.choice)?,
            };
            execute_stmt(stmt)
        }
        Statement::Sql { text, params } => {
            let stmt = match params {
                Some(params) => engine.bind_sql(text, params, request.choice)?,
                None => engine.prepare_sql(text, request.choice)?,
            };
            execute_stmt(stmt)
        }
        Statement::Plan { name, graph, plan } => {
            let result = engine.execute_plan_request(
                name,
                graph,
                plan,
                config,
                Some(request.cancel.clone()),
            )?;
            Ok(QueryOutput {
                result,
                rows: None,
                cache_status: None,
                queue_wait: Duration::ZERO,
                total_wall: Duration::ZERO,
            })
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(dead_code)]
    fn assert_send_sync<T: Send + Sync + 'static>() {}

    #[test]
    fn serving_types_are_send_sync() {
        assert_send_sync::<Server>();
        assert_send_sync::<Ticket>();
        assert_send_sync::<Request>();
        assert_send_sync::<ServerConfig>();
        assert_send_sync::<ServerStats>();
        assert_send_sync::<TenantStats>();
    }

    #[test]
    fn config_clamps_degenerate_values() {
        let config = ServerConfig::default()
            .with_max_concurrent_queries(0)
            .with_queue_capacity(0);
        assert_eq!(config.max_concurrent_queries, 1);
        assert_eq!(config.queue_capacity, 1);
        assert_eq!(config.default_timeout, None);
        assert_eq!(config.policy, SchedulingPolicy::PriorityDeadline);
        assert_eq!(config.tenant_quota, None);
        let config = config
            .with_default_timeout(Duration::from_millis(5))
            .with_policy(SchedulingPolicy::Fifo)
            .with_tenant_quota(TenantQuota::new(0, 0));
        assert_eq!(config.default_timeout, Some(Duration::from_millis(5)));
        assert_eq!(config.policy, SchedulingPolicy::Fifo);
        assert_eq!(config.tenant_quota, Some(TenantQuota::new(1, 1)));
    }

    #[test]
    fn errors_render_their_cause() {
        let full = SubmitError::QueueFull { capacity: 7 };
        assert!(full.to_string().contains('7'));
        assert!(SubmitError::ShutDown.to_string().contains("shut down"));
        assert!(SubmitError::TenantQuotaExceeded
            .to_string()
            .contains("quota"));
        assert!(SubmitError::InvalidRequest { reason: "nope" }
            .to_string()
            .contains("nope"));
        assert!(ServeError::Panicked("boom".into())
            .to_string()
            .contains("boom"));
        assert!(ServeError::Cancelled { partial: None }
            .to_string()
            .contains("cancelled"));
        assert!(ServeError::Cancelled {
            partial: Some(ExecutionMetrics::new())
        }
        .to_string()
        .contains("mid-execution"));
        assert!(ServeError::DeadlineExceeded { partial: None }
            .to_string()
            .contains("deadline"));
        assert!(ServeError::TimedOut.to_string().contains("imed out"));
        let query = ServeError::Query(BqoError::planning(
            "q",
            bqo_storage::StorageError::TableNotFound { table: "t".into() },
        ));
        assert!(query.to_string().contains("`q`"));
        use std::error::Error;
        assert!(query.source().is_some());
        assert!(ServeError::Cancelled { partial: None }.source().is_none());
    }

    #[test]
    fn request_builder_validates_its_input() {
        assert_eq!(
            Request::builder().build().unwrap_err(),
            SubmitError::InvalidRequest {
                reason: "a request needs a query or a plan"
            }
        );
        let spec = QuerySpec::new("q").table("t");
        let request = Request::builder()
            .query(&spec)
            .tenant("a")
            .priority(3)
            .deadline(Duration::from_secs(1))
            .build()
            .unwrap();
        assert_eq!(request.options().tenant.as_deref(), Some("a"));
        assert_eq!(request.options().priority, 3);
        assert_eq!(request.options().deadline, Some(Duration::from_secs(1)));
        // Params on a plan request are rejected.
        let graph = JoinGraph::new();
        let plan =
            PhysicalPlan::from_join_tree(&graph, &bqo_plan::JoinTree::Leaf(bqo_plan::RelId(0)));
        let err = Request::builder()
            .plan("p", graph, plan)
            .params(&Params::new())
            .build()
            .unwrap_err();
        assert!(matches!(err, SubmitError::InvalidRequest { .. }));
    }

    #[test]
    fn dispatch_order_prefers_priority_then_deadline_then_seq() {
        fn queued(priority: i32, deadline: Option<Instant>, seq: u64) -> QueuedRequest {
            QueuedRequest {
                statement: Statement::Spec {
                    spec: QuerySpec::new("q").table("t"),
                    params: None,
                },
                choice: OptimizerChoice::Bqo,
                options: QueryOptions {
                    priority,
                    ..QueryOptions::default()
                },
                deadline,
                cancel: CancelToken::new(),
                seq,
                ticket: Arc::new(TicketShared::new()),
                submitted: Instant::now(),
            }
        }
        let now = Instant::now();
        let soon = now + Duration::from_millis(10);
        let later = now + Duration::from_secs(10);
        // Higher priority wins regardless of order or deadline.
        assert!(beats(&queued(1, None, 5), &queued(0, Some(soon), 1)));
        // Same priority: earlier deadline wins; a deadline beats none.
        assert!(beats(&queued(0, Some(soon), 5), &queued(0, Some(later), 1)));
        assert!(beats(&queued(0, Some(later), 5), &queued(0, None, 1)));
        // Full tie: submission order.
        assert!(beats(&queued(0, None, 1), &queued(0, None, 2)));
        assert!(!beats(&queued(0, None, 2), &queued(0, None, 1)));
    }

    #[test]
    fn latency_histogram_reports_sane_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.snapshot(), LatencyStats::default());
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(50));
        let stats = h.snapshot();
        assert_eq!(stats.count, 100);
        assert_eq!(stats.max, Duration::from_millis(50));
        // 99% of samples sit in the 64–128µs bucket; p50/p95 report its
        // upper bound, p99 may reach into the outlier's bucket ceiling.
        assert_eq!(stats.p50, Duration::from_micros(128));
        assert_eq!(stats.p95, Duration::from_micros(128));
        assert!(stats.p99 >= stats.p95);
        assert!(stats.p99 <= Duration::from_micros(1 << 16));
        assert!(stats.mean >= Duration::from_micros(100));
        assert!(stats.mean <= Duration::from_millis(1));
    }

    #[test]
    fn panic_messages_are_extracted() {
        assert_eq!(panic_message(&"boom"), "boom");
        assert_eq!(panic_message(&"boom".to_string()), "boom");
        assert_eq!(panic_message(&42usize), "<non-string panic payload>");
    }
}
