//! # bqo-core — Bitvector-aware Query Optimization
//!
//! Public facade of the reproduction of *"Bitvector-aware Query Optimization
//! for Decision Support Queries"* (SIGMOD 2020). It ties together the
//! storage, planning, optimization and execution crates behind one
//! serving-grade entry point:
//!
//! * [`Engine`] — built with [`Engine::builder`] (tables, constraints,
//!   [`ExecConfig`], optional shared [`PlanCache`]) or
//!   [`Engine::from_catalog`]. The engine is `Arc`-internal: cloning is a
//!   reference-count bump and every clone is `Send + Sync`, so one engine
//!   serves any number of threads.
//! * [`PreparedStatement`] — an **owned** (`'static`, `Send + Sync`) bound
//!   and optimized query produced by [`Engine::prepare`] (literal specs) or
//!   [`Engine::bind`] (parameterized specs with [`Params`]). Binding
//!   re-derives per-relation cardinalities from catalog statistics for the
//!   bound values and consults the [`PlanCache`]: repeated binds of one
//!   template skip the optimizer entirely, while a bind whose estimated
//!   selectivities leave the cached plan's envelope transparently
//!   re-optimizes (the regime where the paper shows bitvector placements
//!   flip).
//! * **SQL** — [`Engine::parse_sql`] lowers a SQL `SELECT` (see [`sql`] for
//!   the grammar) to the same [`QuerySpec`] machinery;
//!   [`Engine::prepare_sql`] / [`Engine::bind_sql`] add plan caching under
//!   the canonical fingerprint (the same query modulo literal order hits
//!   the same cache entry) and `$param` templates with bind-time
//!   selectivity re-derivation. [`RequestBuilder::sql`] serves SQL text
//!   through the [`Server`].
//! * [`Session`] — a lightweight execution handle carrying per-session
//!   [`ExecConfig`] overrides; [`Session::execute`] runs any statement
//!   through the pull-based operator pipeline of `bqo-exec`, with
//!   [`RunOptions`] selecting a per-run configuration, output-row
//!   collection, and an optional [`CancelToken`] for cooperative
//!   cancellation, all returned in one [`StatementOutput`]. Every fallible
//!   step returns the unified [`BqoError`], which keeps the query name and
//!   processing phase attached to the underlying cause.
//! * [`Server`] — the multi-tenant serving front end over the engine:
//!   [`Server::submit`] admits a [`Request`] (built with
//!   [`Request::builder`], carrying [`QueryOptions`]: tenant, priority,
//!   deadline, row collection, exec-config overrides) into a bounded queue
//!   (backpressure via [`SubmitError::QueueFull`], per-tenant quotas via
//!   [`SubmitError::TenantQuotaExceeded`]) and returns a [`Ticket`]
//!   (`wait` / `cancel` / timeout). Dispatch picks by (priority,
//!   earliest-deadline, FIFO tiebreak) under the default
//!   [`SchedulingPolicy::PriorityDeadline`]; cancellation and deadline
//!   expiry propagate through a cooperative [`CancelToken`] that aborts
//!   in-flight queries at morsel granularity, surfacing as
//!   [`ServeError::Cancelled`] / [`ServeError::DeadlineExceeded`] with the
//!   partial [`ExecutionMetrics`]. At most
//!   [`ServerConfig::max_concurrent_queries`] statements execute at once on
//!   persistent dispatcher threads, panics are contained per request, and
//!   [`ServerStats`] / [`Server::stats_for`] report global and per-tenant
//!   counters plus queue-wait and run-time latency histograms. Parallel
//!   sections inside the executor draw their helper workers from the
//!   engine-owned persistent [`WorkerPool`] instead of spawning threads per
//!   query.
//! * [`experiment`] — the harness used by the examples and the benchmark
//!   binary: run a whole workload under both optimizers and collect the
//!   per-query and aggregate comparisons the paper reports (Figures 8–10,
//!   Table 4).
//! * [`mod@format`] — the on-disk columnar file format (`.bqo`): chunked
//!   columns with per-chunk zone maps and checksums, written with
//!   [`format::FileWriter`] and registered into a catalog via
//!   [`format::CatalogExt`] (`register_file` / `attach_dir`). File-backed
//!   tables execute out of core through chunk-streaming scans with
//!   zone-map pruning ([`ExecConfig::zone_map_pruning`]), bit-identically
//!   to their in-memory twins.
//!
//! ## Quick example
//!
//! ```
//! use bqo_core::{CacheStatus, Engine, OptimizerChoice, Params};
//! use bqo_core::workloads::{star, Scale};
//!
//! // Generate a small star-schema workload and build an engine around it.
//! let workload = star::generate(Scale(0.02), 3, 1, 42);
//! let engine = Engine::builder().catalog(workload.catalog).build().unwrap();
//! let session = engine.session();
//!
//! // Prepare the first query with the bitvector-aware optimizer and run it.
//! let query = &workload.queries[0];
//! let stmt = engine.prepare(query, OptimizerChoice::Bqo).unwrap();
//! println!("{}", session.explain(&stmt));
//! let result = session.run(&stmt).unwrap();
//!
//! // The same query prepared with the baseline returns the same answer.
//! let baseline = engine.prepare(query, OptimizerChoice::Baseline).unwrap();
//! assert_eq!(result.output_rows, session.run(&baseline).unwrap().output_rows);
//!
//! // Parameterized serving: one template, many binds, one cache entry.
//! let template = star::build_param_query("by_category", 3, &[0]);
//! let a = engine
//!     .bind(&template, &Params::new().set("bound0", 2i64), OptimizerChoice::Bqo)
//!     .unwrap();
//! let b = engine
//!     .bind(&template, &Params::new().set("bound0", 3i64), OptimizerChoice::Bqo)
//!     .unwrap();
//! assert_eq!(a.cache_status(), CacheStatus::Miss);
//! assert_eq!(b.cache_status(), CacheStatus::Hit); // optimizer skipped
//! assert!(session.run(&a).unwrap().output_rows <= session.run(&b).unwrap().output_rows);
//! ```
//!
//! ## Execution model
//!
//! Plans execute as a tree of pull-based operators exchanging batches of at
//! most [`ExecConfig::batch_size`] rows: scans apply local predicates and
//! pushed-down bitvector probes, hash joins drain their build side at `open`
//! (publishing their bitvector filter before the probe side starts) and
//! stream the probe side. The probe-heavy loops run as shared-state-free
//! kernels over fixed-size row **morsels** dispatched to
//! [`ExecConfig::num_threads`] workers ([`ExecConfig::with_num_threads`]) —
//! parked threads of the engine-owned persistent [`WorkerPool`], woken per
//! parallel section, with tiny inputs gated inline by
//! [`ExecConfig::parallel_threshold`] — and per-morsel outputs and counters
//! merged deterministically in morsel order, so results and all reported
//! counters are bit-identical for every
//! `(batch_size, morsel_size, num_threads, parallel_threshold)` combination.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod engine;
pub mod error;
pub mod experiment;
pub mod server;

// Re-export the building blocks so downstream users (examples, benches) only
// need to depend on `bqo-core`.
pub use bqo_bitvector as bitvector;
pub use bqo_exec as exec;
pub use bqo_format as format;
pub use bqo_optimizer as optimizer;
pub use bqo_plan as plan;
pub use bqo_sql as sql;
pub use bqo_storage as storage;
pub use bqo_workloads as workloads;

pub use cache::{
    CacheStats, CacheStatus, PlanCache, DEFAULT_ENVELOPE_RATIO, DEFAULT_PLAN_CACHE_CAPACITY,
};
pub use engine::{
    Engine, EngineBuilder, EngineStats, PreparedStatement, RunOptions, Session, StatementOutput,
};
pub use error::{BqoError, QueryPhase};
pub use server::{
    LatencyStats, QueryOptions, QueryOutput, Request, RequestBuilder, SchedulingPolicy, ServeError,
    Server, ServerConfig, ServerStats, SubmitError, TenantQuota, TenantStats, Ticket,
};

pub use bqo_exec::{
    BoundPlan, CancelToken, ExecConfig, ExecutionMetrics, KernelMode, OperatorKind, QueryResult,
    WorkerPool,
};
pub use bqo_optimizer::{BaselineOptimizer, BqoOptimizer, Optimizer};
pub use bqo_plan::{
    ColumnPredicate, CompareOp, CostModel, CoutBreakdown, GraphShape, JoinGraph, Params,
    PhysicalPlan, QuerySpec, SelectivityEnvelope,
};
pub use bqo_sql::{SqlError, SqlErrorKind};
pub use bqo_storage::{Catalog, ForeignKey, StorageError, Table, TableBuilder};

/// Which optimizer to use for a query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerChoice {
    /// Conventional cost-based optimizer; bitvector filters added as a
    /// post-processing step (the paper's baseline, "Original").
    Baseline,
    /// Conventional optimizer with bitvector filtering disabled entirely
    /// (used for the Table 4 comparison).
    BaselineNoBitvectors,
    /// The paper's bitvector-aware optimizer with the default 5% λ threshold.
    Bqo,
    /// The bitvector-aware optimizer with an explicit λ threshold
    /// (0 disables cost-based filter pruning).
    BqoWithThreshold(f64),
}

impl OptimizerChoice {
    /// Short label used to group report rows: every BQO variant collapses to
    /// `"BQO"`. Use [`OptimizerChoice::display_label`] when the λ threshold
    /// must stay visible (e.g. Table-4-style λ sweeps).
    pub fn label(&self) -> &'static str {
        match self {
            OptimizerChoice::Baseline => "Original",
            OptimizerChoice::BaselineNoBitvectors => "Original (no bitvectors)",
            OptimizerChoice::Bqo | OptimizerChoice::BqoWithThreshold(_) => "BQO",
        }
    }

    /// Full label including the λ threshold, so reports sweeping λ can tell
    /// the configurations apart.
    pub fn display_label(&self) -> String {
        match self {
            OptimizerChoice::Baseline => "Original".to_string(),
            OptimizerChoice::BaselineNoBitvectors => "Original (no bitvectors)".to_string(),
            OptimizerChoice::Bqo => {
                format!("BQO (λ={})", bqo_optimizer::DEFAULT_LAMBDA_THRESHOLD)
            }
            OptimizerChoice::BqoWithThreshold(t) => format!("BQO (λ={t})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqo_workloads::{star, tpcds_like, Scale};
    use std::sync::Arc;

    #[test]
    fn optimize_and_execute_star_query() {
        let w = star::generate(Scale(0.02), 3, 2, 5);
        let engine = Engine::from_catalog(w.catalog);
        let session = engine.session();
        for q in &w.queries {
            let bqo = engine.prepare(q, OptimizerChoice::Bqo).unwrap();
            let base = engine.prepare(q, OptimizerChoice::Baseline).unwrap();
            let nobv = engine
                .prepare(q, OptimizerChoice::BaselineNoBitvectors)
                .unwrap();
            let bqo_rows = session.run(&bqo).unwrap().output_rows;
            assert_eq!(
                bqo_rows,
                session.run(&base).unwrap().output_rows,
                "{}",
                q.name
            );
            assert_eq!(
                bqo_rows,
                session.run(&nobv).unwrap().output_rows,
                "{}",
                q.name
            );
            assert!(bqo.estimated_cost().total <= base.estimated_cost().total + 1e-6);
        }
    }

    #[test]
    fn tpcds_queries_round_trip() {
        let w = tpcds_like::generate(Scale(0.01), 4, 9);
        let engine = Engine::from_catalog(w.catalog);
        let session = engine.session();
        for q in &w.queries {
            let opt = engine.prepare(q, OptimizerChoice::Bqo).unwrap();
            let opt_b = engine.prepare(q, OptimizerChoice::Baseline).unwrap();
            assert_eq!(
                session.run(&opt).unwrap().output_rows,
                session.run(&opt_b).unwrap().output_rows,
                "{}",
                q.name
            );
            assert_eq!(
                opt.plan().relation_set(opt.plan().root()).len(),
                opt_b.plan().relation_set(opt_b.plan().root()).len()
            );
        }
    }

    #[test]
    fn explain_output_mentions_operators() {
        let w = star::generate(Scale(0.02), 3, 1, 5);
        let engine = Engine::from_catalog(w.catalog);
        let opt = engine.prepare(&w.queries[0], OptimizerChoice::Bqo).unwrap();
        let text = opt.explain();
        assert!(text.contains("HashJoin"));
        assert!(text.contains("Scan fact"));
    }

    #[test]
    fn prepared_statements_outlive_their_engine_borrowlessly() {
        // The owned-statement contract: a statement prepared by one engine
        // clone can be executed later through another clone's session, and
        // moving it across a thread boundary compiles (Send + 'static).
        let w = star::generate(Scale(0.02), 3, 1, 5);
        let engine = Engine::from_catalog(w.catalog);
        let stmt = engine.prepare(&w.queries[0], OptimizerChoice::Bqo).unwrap();
        let session = engine.session();
        let expected = session.run(&stmt).unwrap().output_rows;
        let handle = std::thread::spawn(move || stmt);
        let stmt = handle.join().unwrap();
        assert_eq!(session.run(&stmt).unwrap().output_rows, expected);
    }

    #[test]
    fn repeated_prepare_hits_the_plan_cache() {
        let w = star::generate(Scale(0.02), 3, 1, 5);
        let engine = Engine::from_catalog(w.catalog);
        let q = &w.queries[0];
        let first = engine.prepare(q, OptimizerChoice::Bqo).unwrap();
        assert_eq!(first.cache_status(), CacheStatus::Miss);
        let second = engine.prepare(q, OptimizerChoice::Bqo).unwrap();
        assert_eq!(second.cache_status(), CacheStatus::Hit);
        // The plan allocation is literally shared with the cache entry.
        assert!(Arc::ptr_eq(&first.shared_plan(), &second.shared_plan()));
        // A different optimizer choice is a different cache key.
        let base = engine.prepare(q, OptimizerChoice::Baseline).unwrap();
        assert_eq!(base.cache_status(), CacheStatus::Miss);
        assert_eq!(engine.plan_cache().hits(), 1);
        assert_eq!(engine.plan_cache().misses(), 2);
    }

    #[test]
    fn preparing_a_parameterized_spec_is_a_descriptive_error() {
        let w = star::generate(Scale(0.02), 2, 1, 5);
        let engine = Engine::from_catalog(w.catalog);
        let template = star::build_param_query("template", 2, &[0]);
        let err = engine.prepare(&template, OptimizerChoice::Bqo).unwrap_err();
        assert_eq!(err.phase(), QueryPhase::Planning);
        assert!(err.to_string().contains("bound0"), "{err}");
        // Binding with the parameter present succeeds.
        let stmt = engine
            .bind(
                &template,
                &Params::new().set("bound0", 5i64),
                OptimizerChoice::Bqo,
            )
            .unwrap();
        assert!(engine.session().run(&stmt).unwrap().output_rows > 0);
    }

    #[test]
    fn optimizer_choice_labels() {
        assert_eq!(OptimizerChoice::Baseline.label(), "Original");
        assert_eq!(OptimizerChoice::Bqo.label(), "BQO");
        assert_eq!(OptimizerChoice::BqoWithThreshold(0.1).label(), "BQO");
        // display_label keeps λ sweeps distinguishable.
        assert_eq!(OptimizerChoice::Baseline.display_label(), "Original");
        assert_eq!(OptimizerChoice::Bqo.display_label(), "BQO (λ=0.05)");
        assert_eq!(
            OptimizerChoice::BqoWithThreshold(0.1).display_label(),
            "BQO (λ=0.1)"
        );
        assert_ne!(
            OptimizerChoice::BqoWithThreshold(0.0).display_label(),
            OptimizerChoice::BqoWithThreshold(0.5).display_label()
        );
    }

    #[test]
    fn engine_builder_constructs_a_working_database() {
        let engine = Engine::builder()
            .table(
                TableBuilder::new("dim")
                    .with_i64("sk", vec![0, 1, 2, 3])
                    .with_i64("cat", vec![0, 1, 0, 1])
                    .build()
                    .unwrap(),
            )
            .table(
                TableBuilder::new("fact")
                    .with_i64("dim_sk", vec![0, 1, 2, 3, 0, 1])
                    .build()
                    .unwrap(),
            )
            .primary_key("dim", "sk")
            .foreign_key(ForeignKey::new("fact", "dim_sk", "dim", "sk"))
            .build()
            .unwrap();
        let q = QuerySpec::new("q")
            .table("fact")
            .table("dim")
            .join("fact", "dim_sk", "dim", "sk")
            .predicate("dim", ColumnPredicate::new("cat", CompareOp::Eq, 0i64));
        let result = engine.run(&q, OptimizerChoice::Bqo).unwrap();
        assert_eq!(result.output_rows, 3);
    }

    #[test]
    fn builder_rejects_bad_constraints() {
        let err = Engine::builder()
            .primary_key("ghost", "sk")
            .build()
            .unwrap_err();
        assert_eq!(err.phase(), QueryPhase::Setup);
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn missing_table_error_surfaces_with_context() {
        let engine = Engine::builder().build().unwrap();
        let q = QuerySpec::new("phantom").table("nope");
        let err = engine.prepare(&q, OptimizerChoice::Bqo).unwrap_err();
        assert_eq!(err.phase(), QueryPhase::Planning);
        assert_eq!(err.query(), Some("phantom"));
        let msg = err.to_string();
        assert!(msg.contains("phantom") && msg.contains("nope"), "{msg}");
    }
}
