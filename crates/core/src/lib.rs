//! # bqo-core — Bitvector-aware Query Optimization
//!
//! Public facade of the reproduction of *"Bitvector-aware Query Optimization
//! for Decision Support Queries"* (SIGMOD 2020). It ties together the
//! storage, planning, optimization and execution crates behind two types:
//!
//! * [`Database`] — register tables and constraints, describe a query as a
//!   [`QuerySpec`], optimize it with either the conventional baseline or the
//!   bitvector-aware optimizer, and execute the resulting plan.
//! * [`experiment`] — the harness used by the examples and the benchmark
//!   binary: run a whole workload under both optimizers and collect the
//!   per-query and aggregate comparisons the paper reports (Figures 8–10,
//!   Table 4).
//!
//! ## Quick example
//!
//! ```
//! use bqo_core::{Database, OptimizerChoice};
//! use bqo_core::workloads::{star, Scale};
//!
//! // Generate a small star-schema workload and load it into a database.
//! let workload = star::generate(Scale(0.02), 3, 1, 42);
//! let db = Database::from_catalog(workload.catalog);
//!
//! // Optimize the first query with the bitvector-aware optimizer and run it.
//! let query = &workload.queries[0];
//! let optimized = db.optimize(query, OptimizerChoice::Bqo).unwrap();
//! let result = db.execute(&optimized).unwrap();
//!
//! // The same query optimized by the baseline returns the same answer.
//! let baseline = db.optimize(query, OptimizerChoice::Baseline).unwrap();
//! assert_eq!(result.output_rows, db.execute(&baseline).unwrap().output_rows);
//! ```

pub mod experiment;

// Re-export the building blocks so downstream users (examples, benches) only
// need to depend on `bqo-core`.
pub use bqo_bitvector as bitvector;
pub use bqo_exec as exec;
pub use bqo_optimizer as optimizer;
pub use bqo_plan as plan;
pub use bqo_storage as storage;
pub use bqo_workloads as workloads;

pub use bqo_exec::{ExecConfig, ExecutionMetrics, Executor, OperatorKind, QueryResult};
pub use bqo_optimizer::{BaselineOptimizer, BqoOptimizer, Optimizer};
pub use bqo_plan::{
    ColumnPredicate, CompareOp, CostModel, CoutBreakdown, GraphShape, JoinGraph, PhysicalPlan,
    QuerySpec,
};
pub use bqo_storage::{Catalog, ForeignKey, StorageError, Table, TableBuilder};

/// Which optimizer to use for a query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerChoice {
    /// Conventional cost-based optimizer; bitvector filters added as a
    /// post-processing step (the paper's baseline, "Original").
    Baseline,
    /// Conventional optimizer with bitvector filtering disabled entirely
    /// (used for the Table 4 comparison).
    BaselineNoBitvectors,
    /// The paper's bitvector-aware optimizer with the default 5% λ threshold.
    Bqo,
    /// The bitvector-aware optimizer with an explicit λ threshold
    /// (0 disables cost-based filter pruning).
    BqoWithThreshold(f64),
}

impl OptimizerChoice {
    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            OptimizerChoice::Baseline => "Original",
            OptimizerChoice::BaselineNoBitvectors => "Original (no bitvectors)",
            OptimizerChoice::Bqo | OptimizerChoice::BqoWithThreshold(_) => "BQO",
        }
    }
}

/// A query after optimization: the resolved join graph, the chosen physical
/// plan and its estimated cost.
#[derive(Debug, Clone)]
pub struct OptimizedQuery {
    /// The query's name (copied from the [`QuerySpec`]).
    pub name: String,
    /// Which optimizer produced the plan.
    pub choice: OptimizerChoice,
    /// The statistics-annotated join graph the optimizer worked on.
    pub graph: JoinGraph,
    /// The physical plan, including bitvector filter placements.
    pub plan: PhysicalPlan,
    /// Estimated bitvector-aware `Cout` of the plan.
    pub estimated_cost: CoutBreakdown,
}

impl OptimizedQuery {
    /// EXPLAIN-style rendering of the plan.
    pub fn explain(&self) -> String {
        self.plan.explain(&self.graph)
    }
}

/// A database: a catalog plus optimization and execution entry points.
#[derive(Debug, Default)]
pub struct Database {
    catalog: Catalog,
    exec_config: ExecConfig,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Wraps an existing catalog (e.g. one produced by the workload
    /// generators).
    pub fn from_catalog(catalog: Catalog) -> Self {
        Database {
            catalog,
            exec_config: ExecConfig::default(),
        }
    }

    /// Registers a table.
    pub fn register_table(&mut self, table: Table) {
        self.catalog.register_table(table);
    }

    /// Declares a primary key (drives PKFK join detection).
    pub fn declare_primary_key(&mut self, table: &str, column: &str) -> Result<(), StorageError> {
        self.catalog.declare_primary_key(table, column)
    }

    /// Declares a foreign key.
    pub fn declare_foreign_key(&mut self, fk: ForeignKey) -> Result<(), StorageError> {
        self.catalog.declare_foreign_key(fk)
    }

    /// Sets the execution configuration (filter kind, bitvectors on/off).
    pub fn set_exec_config(&mut self, config: ExecConfig) {
        self.exec_config = config;
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Optimizes a query with the chosen optimizer.
    pub fn optimize(
        &self,
        query: &QuerySpec,
        choice: OptimizerChoice,
    ) -> Result<OptimizedQuery, StorageError> {
        let graph = query.to_join_graph(&self.catalog)?;
        let plan = match choice {
            OptimizerChoice::Baseline => BaselineOptimizer::new().optimize(&graph),
            OptimizerChoice::BaselineNoBitvectors => {
                BaselineOptimizer::without_bitvectors().optimize(&graph)
            }
            OptimizerChoice::Bqo => BqoOptimizer::new().optimize(&graph),
            OptimizerChoice::BqoWithThreshold(t) => {
                BqoOptimizer::with_threshold(t).optimize(&graph)
            }
        };
        let estimated_cost = CostModel::new(&graph).cout_physical(&plan);
        Ok(OptimizedQuery {
            name: query.name.clone(),
            choice,
            graph,
            plan,
            estimated_cost,
        })
    }

    /// Executes an optimized query with the database's execution
    /// configuration.
    pub fn execute(&self, query: &OptimizedQuery) -> Result<QueryResult, StorageError> {
        Executor::with_config(&self.catalog, self.exec_config).execute(&query.graph, &query.plan)
    }

    /// Executes an optimized query with an explicit execution configuration
    /// (e.g. bitvectors disabled, exact filters).
    pub fn execute_with(
        &self,
        query: &OptimizedQuery,
        config: ExecConfig,
    ) -> Result<QueryResult, StorageError> {
        Executor::with_config(&self.catalog, config).execute(&query.graph, &query.plan)
    }

    /// Convenience: optimize and execute in one call.
    pub fn run(
        &self,
        query: &QuerySpec,
        choice: OptimizerChoice,
    ) -> Result<(OptimizedQuery, QueryResult), StorageError> {
        let optimized = self.optimize(query, choice)?;
        let result = self.execute(&optimized)?;
        Ok((optimized, result))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqo_workloads::{star, tpcds_like, Scale};

    #[test]
    fn optimize_and_execute_star_query() {
        let w = star::generate(Scale(0.02), 3, 2, 5);
        let db = Database::from_catalog(w.catalog);
        for q in &w.queries {
            let bqo = db.run(q, OptimizerChoice::Bqo).unwrap();
            let base = db.run(q, OptimizerChoice::Baseline).unwrap();
            let nobv = db.run(q, OptimizerChoice::BaselineNoBitvectors).unwrap();
            assert_eq!(bqo.1.output_rows, base.1.output_rows, "{}", q.name);
            assert_eq!(bqo.1.output_rows, nobv.1.output_rows, "{}", q.name);
            assert!(bqo.0.estimated_cost.total <= base.0.estimated_cost.total + 1e-6);
        }
    }

    #[test]
    fn tpcds_queries_round_trip() {
        let w = tpcds_like::generate(Scale(0.01), 4, 9);
        let db = Database::from_catalog(w.catalog);
        for q in &w.queries {
            let (opt, res) = db.run(q, OptimizerChoice::Bqo).unwrap();
            let (opt_b, res_b) = db.run(q, OptimizerChoice::Baseline).unwrap();
            assert_eq!(res.output_rows, res_b.output_rows, "{}", q.name);
            assert_eq!(
                opt.plan.relation_set(opt.plan.root()).len(),
                opt_b.plan.relation_set(opt_b.plan.root()).len()
            );
        }
    }

    #[test]
    fn explain_output_mentions_operators() {
        let w = star::generate(Scale(0.02), 3, 1, 5);
        let db = Database::from_catalog(w.catalog);
        let opt = db.optimize(&w.queries[0], OptimizerChoice::Bqo).unwrap();
        let text = opt.explain();
        assert!(text.contains("HashJoin"));
        assert!(text.contains("Scan fact"));
    }

    #[test]
    fn optimizer_choice_labels() {
        assert_eq!(OptimizerChoice::Baseline.label(), "Original");
        assert_eq!(OptimizerChoice::Bqo.label(), "BQO");
        assert_eq!(OptimizerChoice::BqoWithThreshold(0.1).label(), "BQO");
    }

    #[test]
    fn manual_database_construction() {
        let mut db = Database::new();
        db.register_table(
            TableBuilder::new("dim")
                .with_i64("sk", vec![0, 1, 2, 3])
                .with_i64("cat", vec![0, 1, 0, 1])
                .build()
                .unwrap(),
        );
        db.register_table(
            TableBuilder::new("fact")
                .with_i64("dim_sk", vec![0, 1, 2, 3, 0, 1])
                .build()
                .unwrap(),
        );
        db.declare_primary_key("dim", "sk").unwrap();
        db.declare_foreign_key(ForeignKey::new("fact", "dim_sk", "dim", "sk"))
            .unwrap();
        let q = QuerySpec::new("q")
            .table("fact")
            .table("dim")
            .join("fact", "dim_sk", "dim", "sk")
            .predicate("dim", ColumnPredicate::new("cat", CompareOp::Eq, 0i64));
        let (_, result) = db.run(&q, OptimizerChoice::Bqo).unwrap();
        assert_eq!(result.output_rows, 3);
    }

    #[test]
    fn missing_table_error_surfaces() {
        let db = Database::new();
        let q = QuerySpec::new("q").table("nope");
        assert!(db.optimize(&q, OptimizerChoice::Bqo).is_err());
    }
}
