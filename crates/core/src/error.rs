//! The unified error type of the `Engine` facade.

use bqo_storage::StorageError;
use std::fmt;

/// The phase of query processing an error originated in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryPhase {
    /// Catalog construction (registering tables, declaring keys).
    Setup,
    /// Resolving a `QuerySpec` against the catalog and optimizing it.
    Planning,
    /// Running the physical plan.
    Execution,
}

impl QueryPhase {
    fn describe(self) -> &'static str {
        match self {
            QueryPhase::Setup => "while building the catalog",
            QueryPhase::Planning => "while planning",
            QueryPhase::Execution => "while executing",
        }
    }
}

/// Error raised by the `Engine` facade: the underlying storage / planning /
/// execution failure plus the query it happened in, so callers (and error
/// messages) don't lose context as errors cross crate layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BqoError {
    phase: QueryPhase,
    query: Option<String>,
    source: StorageError,
}

impl BqoError {
    /// A catalog-setup error (no query involved).
    pub fn setup(source: StorageError) -> Self {
        BqoError {
            phase: QueryPhase::Setup,
            query: None,
            source,
        }
    }

    /// A planning error for the named query.
    pub fn planning(query: impl Into<String>, source: StorageError) -> Self {
        BqoError {
            phase: QueryPhase::Planning,
            query: Some(query.into()),
            source,
        }
    }

    /// An execution error for the named query.
    pub fn execution(query: impl Into<String>, source: StorageError) -> Self {
        BqoError {
            phase: QueryPhase::Execution,
            query: Some(query.into()),
            source,
        }
    }

    /// The phase the error originated in.
    pub fn phase(&self) -> QueryPhase {
        self.phase
    }

    /// The query the error belongs to, if any.
    pub fn query(&self) -> Option<&str> {
        self.query.as_deref()
    }

    /// The underlying storage-layer error.
    pub fn storage_error(&self) -> &StorageError {
        &self.source
    }
}

impl fmt::Display for BqoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.query {
            Some(query) => write!(
                f,
                "{} query `{query}`: {}",
                self.phase.describe(),
                self.source
            ),
            None => write!(f, "{}: {}", self.phase.describe(), self.source),
        }
    }
}

impl std::error::Error for BqoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

impl From<StorageError> for BqoError {
    fn from(source: StorageError) -> Self {
        BqoError::setup(source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_phase_query_and_cause() {
        let e = BqoError::planning(
            "q7",
            StorageError::TableNotFound {
                table: "ghost".into(),
            },
        );
        let msg = e.to_string();
        assert!(msg.contains("while planning"), "{msg}");
        assert!(msg.contains("`q7`"), "{msg}");
        assert!(msg.contains("`ghost`"), "{msg}");
        assert_eq!(e.phase(), QueryPhase::Planning);
        assert_eq!(e.query(), Some("q7"));
    }

    #[test]
    fn setup_errors_have_no_query() {
        let e = BqoError::from(StorageError::InvalidArgument("bad".into()));
        assert_eq!(e.phase(), QueryPhase::Setup);
        assert_eq!(e.query(), None);
        assert!(e.to_string().contains("catalog"));
    }

    #[test]
    fn error_chain_exposes_the_storage_cause() {
        use std::error::Error;
        let e = BqoError::execution("q", StorageError::InvalidArgument("x".into()));
        assert!(e.source().is_some());
        assert!(matches!(
            e.storage_error(),
            StorageError::InvalidArgument(_)
        ));
    }
}
