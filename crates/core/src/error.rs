//! The unified error type of the `Engine` facade.

use bqo_exec::{ExecError, ExecutionMetrics};
use bqo_storage::StorageError;
use std::fmt;

/// The phase of query processing an error originated in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryPhase {
    /// Catalog construction (registering tables, declaring keys).
    Setup,
    /// Resolving a `QuerySpec` against the catalog and optimizing it.
    Planning,
    /// Running the physical plan.
    Execution,
}

impl QueryPhase {
    fn describe(self) -> &'static str {
        match self {
            QueryPhase::Setup => "while building the catalog",
            QueryPhase::Planning => "while planning",
            QueryPhase::Execution => "while executing",
        }
    }
}

/// Error raised by the `Engine` facade: the underlying storage / planning /
/// execution failure plus the query it happened in, so callers (and error
/// messages) don't lose context as errors cross crate layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BqoError {
    phase: QueryPhase,
    query: Option<String>,
    source: StorageError,
    partial_metrics: Option<Box<ExecutionMetrics>>,
}

impl BqoError {
    /// A catalog-setup error (no query involved).
    pub fn setup(source: StorageError) -> Self {
        BqoError {
            phase: QueryPhase::Setup,
            query: None,
            source,
            partial_metrics: None,
        }
    }

    /// A planning error for the named query.
    pub fn planning(query: impl Into<String>, source: StorageError) -> Self {
        BqoError {
            phase: QueryPhase::Planning,
            query: Some(query.into()),
            source,
            partial_metrics: None,
        }
    }

    /// An execution error for the named query.
    pub fn execution(query: impl Into<String>, source: StorageError) -> Self {
        BqoError {
            phase: QueryPhase::Execution,
            query: Some(query.into()),
            source,
            partial_metrics: None,
        }
    }

    /// An execution error lifted from the executor's [`ExecError`]: a
    /// cancelled run becomes `StorageError::Cancelled` with the partial
    /// metrics preserved; other failures pass through unchanged.
    pub fn from_exec(query: impl Into<String>, source: ExecError) -> Self {
        match source {
            ExecError::Storage(e) => BqoError::execution(query, e),
            ExecError::Cancelled { metrics } => BqoError {
                phase: QueryPhase::Execution,
                query: Some(query.into()),
                source: StorageError::Cancelled,
                partial_metrics: Some(metrics),
            },
        }
    }

    /// The phase the error originated in.
    pub fn phase(&self) -> QueryPhase {
        self.phase
    }

    /// The query the error belongs to, if any.
    pub fn query(&self) -> Option<&str> {
        self.query.as_deref()
    }

    /// The underlying storage-layer error.
    pub fn storage_error(&self) -> &StorageError {
        &self.source
    }

    /// Whether this error is a cooperative cancellation (explicit cancel or
    /// deadline expiry) of an in-flight query.
    pub fn is_cancelled(&self) -> bool {
        self.source == StorageError::Cancelled
    }

    /// The metrics a cancelled run gathered before it was aborted, if this
    /// error carries them.
    pub fn partial_metrics(&self) -> Option<&ExecutionMetrics> {
        self.partial_metrics.as_deref()
    }

    /// Consumes the error, returning the partial metrics of a cancelled run,
    /// if any.
    pub fn take_partial_metrics(&mut self) -> Option<ExecutionMetrics> {
        self.partial_metrics.take().map(|m| *m)
    }
}

impl fmt::Display for BqoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.query {
            Some(query) => write!(
                f,
                "{} query `{query}`: {}",
                self.phase.describe(),
                self.source
            ),
            None => write!(f, "{}: {}", self.phase.describe(), self.source),
        }
    }
}

impl std::error::Error for BqoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

impl From<StorageError> for BqoError {
    fn from(source: StorageError) -> Self {
        BqoError::setup(source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_phase_query_and_cause() {
        let e = BqoError::planning(
            "q7",
            StorageError::TableNotFound {
                table: "ghost".into(),
            },
        );
        let msg = e.to_string();
        assert!(msg.contains("while planning"), "{msg}");
        assert!(msg.contains("`q7`"), "{msg}");
        assert!(msg.contains("`ghost`"), "{msg}");
        assert_eq!(e.phase(), QueryPhase::Planning);
        assert_eq!(e.query(), Some("q7"));
    }

    #[test]
    fn setup_errors_have_no_query() {
        let e = BqoError::from(StorageError::InvalidArgument("bad".into()));
        assert_eq!(e.phase(), QueryPhase::Setup);
        assert_eq!(e.query(), None);
        assert!(e.to_string().contains("catalog"));
    }

    #[test]
    fn error_chain_exposes_the_storage_cause() {
        use std::error::Error;
        let e = BqoError::execution("q", StorageError::InvalidArgument("x".into()));
        assert!(e.source().is_some());
        assert!(matches!(
            e.storage_error(),
            StorageError::InvalidArgument(_)
        ));
    }

    #[test]
    fn from_exec_preserves_partial_metrics_on_cancellation() {
        let mut metrics = ExecutionMetrics::new();
        metrics.filters_created = 3;
        let mut e = BqoError::from_exec(
            "q",
            ExecError::Cancelled {
                metrics: Box::new(metrics.clone()),
            },
        );
        assert!(e.is_cancelled());
        assert_eq!(e.storage_error(), &StorageError::Cancelled);
        assert_eq!(e.partial_metrics(), Some(&metrics));
        assert_eq!(e.take_partial_metrics(), Some(metrics));
        assert_eq!(e.partial_metrics(), None);

        let plain = BqoError::from_exec(
            "q",
            ExecError::Storage(StorageError::TableNotFound { table: "t".into() }),
        );
        assert!(!plain.is_cancelled());
        assert!(plain.partial_metrics().is_none());
    }
}
