//! Workload-level experiment harness.
//!
//! Runs every query of a workload under both the baseline optimizer and the
//! bitvector-aware optimizer, executes the plans, and aggregates the
//! comparisons the paper's evaluation section reports:
//!
//! * total workload CPU broken down by selectivity group (Figure 8),
//! * tuples output by operator class (Figure 9),
//! * per-query CPU, sorted by baseline cost (Figure 10),
//! * executing the same plans with and without bitvector filtering
//!   (Table 4 / Appendix A).
//!
//! Wall-clock time of the Rust executor plays the role of the paper's CPU
//! execution time; the deterministic `logical_work` counter (tuples built,
//! probed and produced) is reported next to it as a noise-free proxy, and the
//! tests assert on the latter.

use crate::engine::RunOptions as EngineRunOptions;
use crate::{BqoError, Engine, OptimizerChoice};
use bqo_exec::{ExecConfig, OperatorKind};
use bqo_workloads::Workload;

/// Measurements of one query under one optimizer.
#[derive(Debug, Clone, Default)]
pub struct RunRecord {
    /// Estimated bitvector-aware `Cout` of the chosen plan.
    pub estimated_cost: f64,
    /// Wall-clock execution time in seconds (best of the configured repeats).
    pub elapsed_secs: f64,
    /// Deterministic work proxy: tuples built + probed + produced (+ filter
    /// probes at reduced weight).
    pub logical_work: u64,
    /// Tuples output by scans.
    pub leaf_tuples: u64,
    /// Tuples output by hash joins.
    pub join_tuples: u64,
    /// Tuples output by residual filter operators.
    pub other_tuples: u64,
    /// Rows in the final result.
    pub output_rows: u64,
    /// Number of bitvector filters created during execution.
    pub filters_created: usize,
    /// Tuples probed against bitvector filters.
    pub filter_probed: u64,
    /// Tuples eliminated by bitvector filters.
    pub filter_eliminated: u64,
}

impl RunRecord {
    /// Total tuples output by all operators.
    pub fn total_tuples(&self) -> u64 {
        self.leaf_tuples + self.join_tuples + self.other_tuples
    }
}

/// Comparison of one query under the baseline and the BQO optimizer.
#[derive(Debug, Clone)]
pub struct QueryComparison {
    pub name: String,
    pub num_joins: usize,
    pub baseline: RunRecord,
    pub bqo: RunRecord,
}

impl QueryComparison {
    /// BQO work as a fraction of baseline work (< 1 means BQO wins).
    pub fn work_ratio(&self) -> f64 {
        if self.baseline.logical_work == 0 {
            1.0
        } else {
            self.bqo.logical_work as f64 / self.baseline.logical_work as f64
        }
    }

    /// BQO time as a fraction of baseline time.
    pub fn time_ratio(&self) -> f64 {
        if self.baseline.elapsed_secs <= 0.0 {
            1.0
        } else {
            self.bqo.elapsed_secs / self.baseline.elapsed_secs
        }
    }
}

/// The selectivity groups of Figure 8: the cheapest third of the queries
/// (by baseline cost) is `S` (highly selective), the most expensive third is
/// `L` (low selectivity), the rest is `M`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectivityGroup {
    S,
    M,
    L,
}

impl SelectivityGroup {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            SelectivityGroup::S => "S",
            SelectivityGroup::M => "M",
            SelectivityGroup::L => "L",
        }
    }
}

/// Aggregate of one selectivity group.
#[derive(Debug, Clone)]
pub struct GroupSummary {
    pub group: SelectivityGroup,
    pub queries: usize,
    pub baseline_work: u64,
    pub bqo_work: u64,
    pub baseline_secs: f64,
    pub bqo_secs: f64,
}

impl GroupSummary {
    /// BQO / baseline work ratio for the group.
    pub fn work_ratio(&self) -> f64 {
        if self.baseline_work == 0 {
            1.0
        } else {
            self.bqo_work as f64 / self.baseline_work as f64
        }
    }
}

/// Result of running one workload under both optimizers.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    pub workload: String,
    pub queries: Vec<QueryComparison>,
}

impl WorkloadReport {
    /// Total BQO work divided by total baseline work (Figure 8's headline
    /// number; < 1 means the bitvector-aware optimizer reduced total cost).
    pub fn total_work_ratio(&self) -> f64 {
        let base: u64 = self.queries.iter().map(|q| q.baseline.logical_work).sum();
        let bqo: u64 = self.queries.iter().map(|q| q.bqo.logical_work).sum();
        if base == 0 {
            1.0
        } else {
            bqo as f64 / base as f64
        }
    }

    /// Total BQO wall time divided by total baseline wall time.
    pub fn total_time_ratio(&self) -> f64 {
        let base: f64 = self.queries.iter().map(|q| q.baseline.elapsed_secs).sum();
        let bqo: f64 = self.queries.iter().map(|q| q.bqo.elapsed_secs).sum();
        if base <= 0.0 {
            1.0
        } else {
            bqo / base
        }
    }

    /// Assigns each query to a selectivity group by its baseline cost
    /// (cheapest third S, most expensive third L) and aggregates.
    pub fn selectivity_groups(&self) -> Vec<GroupSummary> {
        let mut order: Vec<usize> = (0..self.queries.len()).collect();
        order.sort_by_key(|&i| self.queries[i].baseline.logical_work);
        let n = order.len();
        let third = n / 3;
        let group_of = |rank: usize| {
            if n < 3 {
                SelectivityGroup::M
            } else if rank < third {
                SelectivityGroup::S
            } else if rank >= n - third {
                SelectivityGroup::L
            } else {
                SelectivityGroup::M
            }
        };
        let mut summaries = vec![
            GroupSummary {
                group: SelectivityGroup::S,
                queries: 0,
                baseline_work: 0,
                bqo_work: 0,
                baseline_secs: 0.0,
                bqo_secs: 0.0,
            },
            GroupSummary {
                group: SelectivityGroup::M,
                queries: 0,
                baseline_work: 0,
                bqo_work: 0,
                baseline_secs: 0.0,
                bqo_secs: 0.0,
            },
            GroupSummary {
                group: SelectivityGroup::L,
                queries: 0,
                baseline_work: 0,
                bqo_work: 0,
                baseline_secs: 0.0,
                bqo_secs: 0.0,
            },
        ];
        for (rank, &idx) in order.iter().enumerate() {
            let group = group_of(rank);
            let slot = summaries
                .iter_mut()
                .find(|s| s.group == group)
                .expect("all groups preallocated");
            let q = &self.queries[idx];
            slot.queries += 1;
            slot.baseline_work += q.baseline.logical_work;
            slot.bqo_work += q.bqo.logical_work;
            slot.baseline_secs += q.baseline.elapsed_secs;
            slot.bqo_secs += q.bqo.elapsed_secs;
        }
        summaries
    }

    /// Total tuples output per operator class (Figure 9), for both systems,
    /// normalized by the baseline total.
    pub fn tuple_breakdown(&self) -> TupleBreakdown {
        let mut breakdown = TupleBreakdown::default();
        for q in &self.queries {
            breakdown.baseline_leaf += q.baseline.leaf_tuples;
            breakdown.baseline_join += q.baseline.join_tuples;
            breakdown.baseline_other += q.baseline.other_tuples;
            breakdown.bqo_leaf += q.bqo.leaf_tuples;
            breakdown.bqo_join += q.bqo.join_tuples;
            breakdown.bqo_other += q.bqo.other_tuples;
        }
        breakdown
    }

    /// Queries sorted by descending baseline work (the Figure 10 x-axis).
    pub fn sorted_by_baseline_cost(&self) -> Vec<&QueryComparison> {
        let mut refs: Vec<&QueryComparison> = self.queries.iter().collect();
        refs.sort_by_key(|q| std::cmp::Reverse(q.baseline.logical_work));
        refs
    }
}

/// Figure 9 aggregate: tuples output per operator class.
#[derive(Debug, Clone, Copy, Default)]
pub struct TupleBreakdown {
    pub baseline_leaf: u64,
    pub baseline_join: u64,
    pub baseline_other: u64,
    pub bqo_leaf: u64,
    pub bqo_join: u64,
    pub bqo_other: u64,
}

impl TupleBreakdown {
    /// Total tuples output by the baseline plans.
    pub fn baseline_total(&self) -> u64 {
        self.baseline_leaf + self.baseline_join + self.baseline_other
    }

    /// Total tuples output by the BQO plans.
    pub fn bqo_total(&self) -> u64 {
        self.bqo_leaf + self.bqo_join + self.bqo_other
    }
}

/// Table 4 aggregate: the same (baseline) plans executed with and without
/// bitvector filtering.
#[derive(Debug, Clone)]
pub struct BitvectorEffectReport {
    pub workload: String,
    /// Work with bitvectors / work without (the paper's "CPU ratio").
    pub work_ratio: f64,
    /// Wall-time ratio (with / without).
    pub time_ratio: f64,
    /// Fraction of queries whose plans contain at least one bitvector filter.
    pub queries_with_bitvectors: f64,
    /// Fraction of queries improved by more than 20%.
    pub improved: f64,
    /// Fraction of queries regressed by more than 20%.
    pub regressed: f64,
}

/// Options controlling a workload experiment run.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentOptions {
    /// Execution configuration used for both optimizers.
    pub exec: ExecConfig,
    /// Number of times each plan is executed; the fastest run is kept
    /// (mirrors the paper's warm-run averaging while staying cheap).
    pub repetitions: usize,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            exec: ExecConfig::default(),
            repetitions: 1,
        }
    }
}

fn record_for(
    engine: &Engine,
    query: &bqo_plan::QuerySpec,
    choice: OptimizerChoice,
    options: &ExperimentOptions,
) -> Result<RunRecord, BqoError> {
    let session = engine.session().with_exec_config(options.exec);
    let prepared = engine.prepare(query, choice)?;
    let mut best: Option<RunRecord> = None;
    for _ in 0..options.repetitions.max(1) {
        let result = session.run(&prepared)?;
        let record = RunRecord {
            estimated_cost: prepared.estimated_cost().total,
            elapsed_secs: result.metrics.elapsed_secs(),
            logical_work: result.metrics.logical_work(),
            leaf_tuples: result.metrics.tuples_by_kind(OperatorKind::Leaf),
            join_tuples: result.metrics.tuples_by_kind(OperatorKind::Join),
            other_tuples: result.metrics.tuples_by_kind(OperatorKind::Other),
            output_rows: result.output_rows,
            filters_created: result.metrics.filters_created,
            filter_probed: result.metrics.filter_stats.probed,
            filter_eliminated: result.metrics.filter_stats.eliminated,
        };
        match &best {
            Some(b) if b.elapsed_secs <= record.elapsed_secs => {}
            _ => best = Some(record),
        }
    }
    Ok(best.expect("at least one repetition"))
}

/// Runs every query of the workload under the baseline and the BQO optimizer
/// and returns the comparison report (Figures 8–10).
pub fn run_workload(
    workload: &Workload,
    options: ExperimentOptions,
) -> Result<WorkloadReport, BqoError> {
    let engine = Engine::from_catalog(workload.catalog.clone());
    let mut queries = Vec::with_capacity(workload.queries.len());
    for query in &workload.queries {
        let baseline = record_for(&engine, query, OptimizerChoice::Baseline, &options)?;
        let bqo = record_for(&engine, query, OptimizerChoice::Bqo, &options)?;
        // Sanity: both plans must compute the same answer.
        debug_assert_eq!(
            baseline.output_rows, bqo.output_rows,
            "optimizers disagree on {}",
            query.name
        );
        queries.push(QueryComparison {
            name: query.name.clone(),
            num_joins: query.num_joins(),
            baseline,
            bqo,
        });
    }
    Ok(WorkloadReport {
        workload: workload.name.clone(),
        queries,
    })
}

/// Runs the baseline plans with and without bitvector filtering (Table 4 /
/// Appendix A).
pub fn bitvector_effect(
    workload: &Workload,
    options: ExperimentOptions,
) -> Result<BitvectorEffectReport, BqoError> {
    let engine = Engine::from_catalog(workload.catalog.clone());
    let mut with_work: u64 = 0;
    let mut without_work: u64 = 0;
    let mut with_secs = 0.0;
    let mut without_secs = 0.0;
    let mut with_bv_queries = 0usize;
    let mut improved = 0usize;
    let mut regressed = 0usize;
    let session = engine.session();
    for query in &workload.queries {
        let prepared = engine.prepare(query, OptimizerChoice::Baseline)?;
        if !prepared.plan().placements.is_empty() {
            with_bv_queries += 1;
        }
        let with = session
            .execute(
                &prepared,
                EngineRunOptions::new().with_exec_config(options.exec),
            )?
            .result;
        let without = session
            .execute(
                &prepared,
                EngineRunOptions::new().with_exec_config(ExecConfig::without_bitvectors()),
            )?
            .result;
        let w_work = with.metrics.logical_work();
        let wo_work = without.metrics.logical_work();
        with_work += w_work;
        without_work += wo_work;
        with_secs += with.metrics.elapsed_secs();
        without_secs += without.metrics.elapsed_secs();
        if (w_work as f64) < 0.8 * wo_work as f64 {
            improved += 1;
        }
        if (w_work as f64) > 1.2 * wo_work as f64 {
            regressed += 1;
        }
    }
    let n = workload.queries.len().max(1) as f64;
    Ok(BitvectorEffectReport {
        workload: workload.name.clone(),
        work_ratio: if without_work == 0 {
            1.0
        } else {
            with_work as f64 / without_work as f64
        },
        time_ratio: if without_secs <= 0.0 {
            1.0
        } else {
            with_secs / without_secs
        },
        queries_with_bitvectors: with_bv_queries as f64 / n,
        improved: improved as f64 / n,
        regressed: regressed as f64 / n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqo_workloads::{star, tpcds_like, Scale};

    fn small_report() -> WorkloadReport {
        let w = tpcds_like::generate(Scale(0.01), 6, 12);
        run_workload(&w, ExperimentOptions::default()).unwrap()
    }

    #[test]
    fn report_covers_all_queries_and_bqo_does_not_lose() {
        let report = small_report();
        assert_eq!(report.queries.len(), 6);
        // On decision-support shapes BQO should not do more total work than
        // the baseline (individual queries may tie).
        assert!(
            report.total_work_ratio() <= 1.05,
            "ratio {}",
            report.total_work_ratio()
        );
    }

    #[test]
    fn selectivity_groups_partition_the_queries() {
        let report = small_report();
        let groups = report.selectivity_groups();
        assert_eq!(groups.len(), 3);
        let total: usize = groups.iter().map(|g| g.queries).sum();
        assert_eq!(total, report.queries.len());
        // With six queries each group holds exactly two.
        assert!(groups.iter().all(|g| g.queries == 2));
    }

    #[test]
    fn tuple_breakdown_sums_to_per_query_totals() {
        let report = small_report();
        let breakdown = report.tuple_breakdown();
        let expected: u64 = report
            .queries
            .iter()
            .map(|q| q.baseline.total_tuples())
            .sum();
        assert_eq!(breakdown.baseline_total(), expected);
        assert!(breakdown.bqo_total() > 0);
    }

    #[test]
    fn sorted_by_baseline_cost_is_descending() {
        let report = small_report();
        let sorted = report.sorted_by_baseline_cost();
        for pair in sorted.windows(2) {
            assert!(pair[0].baseline.logical_work >= pair[1].baseline.logical_work);
        }
    }

    #[test]
    fn bitvector_effect_reduces_work() {
        let w = star::generate(Scale(0.05), 4, 5, 21);
        let report = bitvector_effect(&w, ExperimentOptions::default()).unwrap();
        assert!(report.queries_with_bitvectors > 0.9);
        assert!(
            report.work_ratio < 1.0,
            "bitvector filtering should reduce work: {}",
            report.work_ratio
        );
        assert!(report.regressed <= 0.2);
    }

    #[test]
    fn repetitions_keep_the_fastest_run() {
        let w = star::generate(Scale(0.02), 3, 1, 3);
        let opts = ExperimentOptions {
            repetitions: 3,
            ..Default::default()
        };
        let report = run_workload(&w, opts).unwrap();
        assert_eq!(report.queries.len(), 1);
        assert!(report.queries[0].baseline.elapsed_secs > 0.0);
    }
}
