//! The selectivity-aware plan cache behind `Engine::prepare` / `Engine::bind`.
//!
//! Entries are keyed by a canonical query fingerprint (normalized spec +
//! optimizer choice + catalog version, assembled by the engine) and store the
//! optimized plan **together with the selectivity envelope it was optimized
//! for** ([`bqo_plan::SelectivityEnvelope`]). A bind whose re-estimated
//! per-relation selectivities stay inside the envelope is served the cached
//! plan without touching the optimizer; a bind that leaves the envelope — the
//! regime where the paper shows join order and bitvector placements flip
//! (Ding et al., SIGMOD 2020, §5–6) — transparently re-optimizes and replaces
//! the entry.
//!
//! The cache is internally `Arc`-shared: clones observe the same entries and
//! counters, so one cache can serve many engines/sessions concurrently (the
//! per-lookup critical section only covers the map access, never the
//! optimizer run — racing misses on the same key both optimize and the last
//! insert wins, which is harmless because optimization is deterministic).

use bqo_plan::{JoinGraph, PhysicalPlan, SelectivityEnvelope};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default multiplicative tolerance of the stored selectivity envelope: a
/// cached plan keeps serving binds whose per-relation local selectivities
/// stay within `[s/4, 4s]` of the selectivities it was optimized for.
pub const DEFAULT_ENVELOPE_RATIO: f64 = 4.0;

/// Default [`PlanCache::capacity`]: the maximum number of cached plans before
/// least-recently-used entries are evicted. Parameterized templates share one
/// entry per template, so this comfortably covers a serving workload's
/// distinct statement shapes while bounding memory for ad-hoc literal
/// traffic.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

/// How a `PreparedStatement` was obtained from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// No entry existed — the optimizer ran and the plan was inserted.
    Miss,
    /// A cached plan covered the bind's selectivities — the optimizer was
    /// skipped entirely.
    Hit,
    /// An entry existed but the bind's selectivities left its envelope — the
    /// optimizer re-ran and the entry was replaced.
    Reoptimized,
}

#[derive(Debug, Clone)]
struct CachedPlan {
    plan: Arc<PhysicalPlan>,
    envelope: SelectivityEnvelope,
    /// Relation names in the `RelId` order of the graph the plan was
    /// optimized against. Physical plans reference relations positionally,
    /// and fingerprints are order-invariant — so a hit under a spec that
    /// lists the same tables in a different order must renumber the plan to
    /// the new graph's ids before it can be executed.
    relation_names: Vec<String>,
    /// Logical timestamp of the entry's last lookup (hit or replacement);
    /// the LRU eviction key.
    last_used: u64,
}

impl CachedPlan {
    /// The cached plan renumbered to `graph`'s relation ids, or `None` if a
    /// stored relation name is missing from the graph (a structural mismatch
    /// the caller must treat as a cache exit). Returns the shared allocation
    /// untouched when the numbering already agrees.
    fn plan_for(&self, graph: &JoinGraph) -> Option<Arc<PhysicalPlan>> {
        let map: Vec<bqo_plan::RelId> = self
            .relation_names
            .iter()
            .map(|name| graph.relation_by_name(name))
            .collect::<Option<_>>()?;
        if map.iter().enumerate().all(|(i, r)| r.index() == i) {
            Some(self.plan.clone())
        } else {
            Some(Arc::new(self.plan.remap_relations(&map)))
        }
    }
}

#[derive(Debug, Default)]
struct PlanCacheInner {
    entries: Mutex<HashMap<String, CachedPlan>>,
    hits: AtomicU64,
    misses: AtomicU64,
    reoptimizations: AtomicU64,
    evictions: AtomicU64,
    /// Logical clock stamping entry usage (monotonic per lookup).
    clock: AtomicU64,
    envelope_ratio: f64,
    capacity: usize,
}

/// A point-in-time snapshot of a [`PlanCache`]'s counters and occupancy, as
/// returned by [`PlanCache::cache_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache without running the optimizer.
    pub hits: u64,
    /// Lookups that found no entry and ran the optimizer.
    pub misses: u64,
    /// Lookups that found an entry but re-optimized (envelope exit).
    pub reoptimizations: u64,
    /// Entries evicted to keep the cache within its capacity.
    pub evictions: u64,
    /// Number of currently cached plans.
    pub len: usize,
    /// Maximum number of cached plans before LRU eviction kicks in.
    pub capacity: usize,
}

/// A shared, thread-safe cache of optimized plans with per-entry selectivity
/// envelopes. Cloning is cheap and shares entries and counters.
///
/// The cache is bounded: at most [`PlanCache::capacity`] plans are retained
/// (default [`DEFAULT_PLAN_CACHE_CAPACITY`]), and inserting beyond that
/// evicts the least-recently-used entry (the [`PlanCache::evictions`] counter
/// records how often). High-cardinality literal values should still be
/// expressed as parameterized templates (all binds of one template share a
/// single entry) rather than as per-value literal specs — eviction bounds
/// memory, but an evicted plan costs a fresh optimizer run on its next use.
#[derive(Debug, Clone)]
pub struct PlanCache {
    inner: Arc<PlanCacheInner>,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

impl PlanCache {
    /// An empty cache with the default envelope tolerance
    /// ([`DEFAULT_ENVELOPE_RATIO`]) and capacity
    /// ([`DEFAULT_PLAN_CACHE_CAPACITY`]).
    pub fn new() -> Self {
        PlanCache::with_envelope_ratio_and_capacity(
            DEFAULT_ENVELOPE_RATIO,
            DEFAULT_PLAN_CACHE_CAPACITY,
        )
    }

    /// An empty cache with an explicit envelope tolerance (values below 1
    /// are clamped to 1, i.e. only exact selectivity matches hit) and the
    /// default capacity.
    pub fn with_envelope_ratio(ratio: f64) -> Self {
        PlanCache::with_envelope_ratio_and_capacity(ratio, DEFAULT_PLAN_CACHE_CAPACITY)
    }

    /// An empty cache with an explicit capacity bound (clamped to at least 1)
    /// and the default envelope tolerance.
    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache::with_envelope_ratio_and_capacity(DEFAULT_ENVELOPE_RATIO, capacity)
    }

    /// An empty cache with explicit envelope tolerance and capacity bound.
    pub fn with_envelope_ratio_and_capacity(ratio: f64, capacity: usize) -> Self {
        PlanCache {
            inner: Arc::new(PlanCacheInner {
                envelope_ratio: ratio.max(1.0),
                capacity: capacity.max(1),
                ..Default::default()
            }),
        }
    }

    /// The multiplicative selectivity tolerance of stored envelopes.
    pub fn envelope_ratio(&self) -> f64 {
        self.inner.envelope_ratio
    }

    /// Maximum number of cached plans before LRU eviction kicks in.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Number of lookups served from the cache without running the optimizer.
    pub fn hits(&self) -> u64 {
        // ORDERING: Relaxed — monotonic statistics counter; readers want
        // a recent value, not a synchronized snapshot.
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that found no entry and ran the optimizer.
    pub fn misses(&self) -> u64 {
        // ORDERING: Relaxed — monotonic statistics counter; readers want
        // a recent value, not a synchronized snapshot.
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Number of lookups that found an entry but re-optimized because the
    /// bind's selectivities left the stored envelope.
    pub fn reoptimizations(&self) -> u64 {
        // ORDERING: Relaxed — monotonic statistics counter; readers want
        // a recent value, not a synchronized snapshot.
        self.inner.reoptimizations.load(Ordering::Relaxed)
    }

    /// Number of entries evicted to keep the cache within its capacity.
    pub fn evictions(&self) -> u64 {
        // ORDERING: Relaxed — monotonic statistics counter; readers want
        // a recent value, not a synchronized snapshot.
        self.inner.evictions.load(Ordering::Relaxed)
    }

    /// A point-in-time snapshot of counters and occupancy. Each field is
    /// read independently (the counters are relaxed atomics), so under
    /// concurrent traffic the fields may be mutually off by the handful of
    /// lookups in flight — fine for monitoring, not a transactional view.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits(),
            misses: self.misses(),
            reoptimizations: self.reoptimizations(),
            evictions: self.evictions(),
            len: self.len(),
            capacity: self.capacity(),
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner
            .entries
            .lock()
            .expect("plan cache poisoned")
            .len()
    }

    /// True if the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan. Counters are preserved (they describe
    /// lifetime traffic, not current contents).
    pub fn clear(&self) {
        self.inner
            .entries
            .lock()
            .expect("plan cache poisoned")
            .clear();
    }

    /// Resolves `key` for a bind whose re-estimated statistics are `graph`:
    /// serves the cached plan on an envelope-covered hit (renumbered to the
    /// bind's relation ids when the spec listed its tables in a different
    /// order), otherwise runs `optimize` and (re-)inserts the plan with a
    /// fresh envelope around the bind's selectivities.
    ///
    /// The map lock is *not* held while `optimize` runs; concurrent misses on
    /// one key may optimize redundantly, but optimization is deterministic so
    /// whichever insert lands last leaves the same plan.
    pub(crate) fn resolve(
        &self,
        key: &str,
        graph: &JoinGraph,
        optimize: impl FnOnce() -> PhysicalPlan,
    ) -> (Arc<PhysicalPlan>, CacheStatus) {
        let existing = {
            let mut entries = self.inner.entries.lock().expect("plan cache poisoned");
            entries.get_mut(key).map(|entry| {
                // Touch on every lookup (hit or replacement): an entry the
                // traffic keeps asking about is not the one to evict. The
                // stamp is drawn *inside* the lock — a stamp taken earlier
                // could move `last_used` backwards past concurrent touches
                // and turn a hot entry into the LRU victim.
                // ORDERING: Relaxed — the clock only needs unique, roughly
                // increasing stamps; `last_used` itself is written under the
                // entries lock, which orders it.
                entry.last_used = self.inner.clock.fetch_add(1, Ordering::Relaxed);
                entry.clone()
            })
        };
        let status = match &existing {
            Some(entry) if entry.envelope.contains(graph) => {
                // `plan_for` only fails on a structural mismatch (a stored
                // relation name the graph lacks) — fall through and
                // re-optimize rather than serving an inapplicable plan.
                if let Some(plan) = entry.plan_for(graph) {
                    // ORDERING: Relaxed — statistics counter.
                    self.inner.hits.fetch_add(1, Ordering::Relaxed);
                    return (plan, CacheStatus::Hit);
                }
                CacheStatus::Reoptimized
            }
            Some(_) => CacheStatus::Reoptimized,
            None => CacheStatus::Miss,
        };
        let plan = Arc::new(optimize());
        let envelope = SelectivityEnvelope::around(graph, self.inner.envelope_ratio);
        let relation_names = graph.relations().iter().map(|r| r.name.clone()).collect();
        {
            let mut entries = self.inner.entries.lock().expect("plan cache poisoned");
            // Stamp the insertion with a *fresh* clock value: the lookup
            // stamp `now` predates the (potentially slow) optimizer run, and
            // concurrent traffic may have touched every other entry since —
            // reusing it would make the just-optimized entry the LRU victim
            // of its own insertion.
            entries.insert(
                key.to_string(),
                CachedPlan {
                    plan: plan.clone(),
                    envelope,
                    relation_names,
                    // ORDERING: Relaxed — unique stamp; entry publication
                    // happens under the entries lock.
                    last_used: self.inner.clock.fetch_add(1, Ordering::Relaxed),
                },
            );
            // LRU eviction: drop least-recently-used entries until the
            // capacity bound holds again. The just-inserted entry carries the
            // newest stamp, so it always survives its own insertion.
            while entries.len() > self.inner.capacity {
                let victim = entries
                    .iter()
                    .min_by_key(|(_, entry)| entry.last_used)
                    .map(|(key, _)| key.clone())
                    .expect("cache over capacity implies a victim");
                entries.remove(&victim);
                // ORDERING: Relaxed — statistics counter.
                self.inner.evictions.fetch_add(1, Ordering::Relaxed);
            }
            // Account the lookup before releasing the lock so a snapshot
            // never observes this insertion's eviction without its
            // miss/re-optimization.
            // ORDERING: Relaxed — statistics counters (the comment above
            // explains why they are bumped while still holding the lock).
            match status {
                CacheStatus::Reoptimized => {
                    self.inner.reoptimizations.fetch_add(1, Ordering::Relaxed) // ORDERING: see above
                }
                _ => self.inner.misses.fetch_add(1, Ordering::Relaxed), // ORDERING: see above
            };
        }
        (plan, status)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqo_plan::{JoinEdge, RelationInfo};

    fn star(dim_filtered: f64) -> JoinGraph {
        let mut g = JoinGraph::new();
        let fact = g.add_relation(RelationInfo::new("fact", 1000.0, 1000.0));
        let d = g.add_relation(RelationInfo::new("d", 100.0, dim_filtered));
        g.add_edge(JoinEdge::pkfk(fact, "d_sk", d, "sk", 100.0));
        g
    }

    fn dummy_plan() -> PhysicalPlan {
        PhysicalPlan::new()
    }

    #[test]
    fn miss_then_hit_then_envelope_exit() {
        let cache = PlanCache::new();
        let g = star(5.0);
        let (_, status) = cache.resolve("k", &g, dummy_plan);
        assert_eq!(status, CacheStatus::Miss);
        // Same selectivity: hit, optimizer closure must not run.
        let (_, status) = cache.resolve("k", &g, || unreachable!("hit must skip optimization"));
        assert_eq!(status, CacheStatus::Hit);
        // Nearby selectivity (5% -> 10%, within ratio 4): still a hit.
        let (_, status) = cache.resolve("k", &star(10.0), || {
            unreachable!("in-envelope bind must skip optimization")
        });
        assert_eq!(status, CacheStatus::Hit);
        // Far selectivity (5% -> 90%): envelope exit, re-optimize.
        let (_, status) = cache.resolve("k", &star(90.0), dummy_plan);
        assert_eq!(status, CacheStatus::Reoptimized);
        // The entry was replaced: the new envelope covers 90%, not 5%.
        let (_, status) = cache.resolve("k", &star(90.0), || unreachable!());
        assert_eq!(status, CacheStatus::Hit);
        let (_, status) = cache.resolve("k", &star(5.0), dummy_plan);
        assert_eq!(status, CacheStatus::Reoptimized);

        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.reoptimizations(), 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn hit_under_permuted_relation_order_renumbers_the_plan() {
        use bqo_plan::{PhysicalNode, RelId};
        let cache = PlanCache::new();
        let g = star(5.0); // fact = R0, d = R1
        let mut plan = PhysicalPlan::new();
        let scan = plan.add_node(PhysicalNode::Scan { relation: RelId(0) });
        plan.set_root(scan);
        assert_eq!(cache.resolve("k", &g, move || plan).1, CacheStatus::Miss);

        // The same relations and selectivities, numbered in reverse (as a
        // spec listing `d` before `fact` would resolve them).
        let mut permuted = JoinGraph::new();
        let d = permuted.add_relation(RelationInfo::new("d", 100.0, 5.0));
        let fact = permuted.add_relation(RelationInfo::new("fact", 1000.0, 1000.0));
        permuted.add_edge(JoinEdge::pkfk(fact, "d_sk", d, "sk", 100.0));
        let (served, status) = cache.resolve("k", &permuted, || unreachable!("hit"));
        assert_eq!(status, CacheStatus::Hit);
        // The served plan's fact scan now uses the permuted graph's id.
        assert_eq!(
            served.node(served.root()),
            &PhysicalNode::Scan { relation: fact }
        );
    }

    #[test]
    fn different_keys_do_not_collide() {
        let cache = PlanCache::new();
        let g = star(5.0);
        assert_eq!(cache.resolve("a", &g, dummy_plan).1, CacheStatus::Miss);
        assert_eq!(cache.resolve("b", &g, dummy_plan).1, CacheStatus::Miss);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clear_preserves_counters() {
        let cache = PlanCache::new();
        let g = star(5.0);
        cache.resolve("k", &g, dummy_plan);
        cache.resolve("k", &g, dummy_plan);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // Re-resolving after clear is a miss again.
        assert_eq!(cache.resolve("k", &g, dummy_plan).1, CacheStatus::Miss);
    }

    #[test]
    fn clones_share_entries_and_counters() {
        let cache = PlanCache::new();
        let clone = cache.clone();
        let g = star(5.0);
        cache.resolve("k", &g, dummy_plan);
        assert_eq!(clone.resolve("k", &g, dummy_plan).1, CacheStatus::Hit);
        assert_eq!(cache.hits(), 1);
        assert_eq!(clone.hits(), 1);
    }

    #[test]
    fn ratio_below_one_is_clamped() {
        let cache = PlanCache::with_envelope_ratio(0.5);
        assert_eq!(cache.envelope_ratio(), 1.0);
    }

    #[test]
    fn capacity_is_clamped_and_defaults_apply() {
        assert_eq!(PlanCache::new().capacity(), DEFAULT_PLAN_CACHE_CAPACITY);
        assert_eq!(PlanCache::with_capacity(0).capacity(), 1);
        let cache = PlanCache::with_envelope_ratio_and_capacity(2.0, 8);
        assert_eq!((cache.envelope_ratio(), cache.capacity()), (2.0, 8));
    }

    #[test]
    fn lru_eviction_bounds_the_cache_and_counts() {
        let cache = PlanCache::with_capacity(2);
        let g = star(5.0);
        cache.resolve("a", &g, dummy_plan);
        cache.resolve("b", &g, dummy_plan);
        assert_eq!((cache.len(), cache.evictions()), (2, 0));
        // Touch "a" so "b" becomes the least recently used entry...
        assert_eq!(
            cache.resolve("a", &g, || unreachable!()).1,
            CacheStatus::Hit
        );
        // ...then overflow: "b" is evicted, "a" survives.
        cache.resolve("c", &g, dummy_plan);
        assert_eq!((cache.len(), cache.evictions()), (2, 1));
        assert_eq!(
            cache.resolve("a", &g, || unreachable!()).1,
            CacheStatus::Hit
        );
        assert_eq!(cache.resolve("b", &g, dummy_plan).1, CacheStatus::Miss);
        // Re-resolving "b" overflowed again: "c" (least recent) was evicted.
        assert_eq!((cache.len(), cache.evictions()), (2, 2));
        assert_eq!(cache.resolve("c", &g, dummy_plan).1, CacheStatus::Miss);

        let stats = cache.cache_stats();
        assert_eq!(stats.evictions, 3);
        assert_eq!(stats.len, 2);
        assert_eq!(stats.capacity, 2);
        assert_eq!(stats.hits, cache.hits());
        assert_eq!(stats.misses, cache.misses());
    }

    #[test]
    fn slow_optimization_does_not_evict_its_own_insertion() {
        // Regression: the insertion stamp must be taken *after* the optimizer
        // ran. Traffic that touches every other entry while a new key
        // optimizes (simulated by re-entrant resolves inside the optimize
        // closure — the map lock is not held there) must not make the new
        // entry the LRU victim of its own insertion.
        let cache = PlanCache::with_capacity(2);
        let g = star(5.0);
        cache.resolve("a", &g, dummy_plan);
        cache.resolve("b", &g, dummy_plan);
        let (_, status) = cache.resolve("c", &g, || {
            assert_eq!(
                cache.resolve("a", &g, || unreachable!()).1,
                CacheStatus::Hit
            );
            assert_eq!(
                cache.resolve("b", &g, || unreachable!()).1,
                CacheStatus::Hit
            );
            dummy_plan()
        });
        assert_eq!(status, CacheStatus::Miss);
        assert_eq!(
            cache.resolve("c", &g, || unreachable!()).1,
            CacheStatus::Hit
        );
        assert_eq!((cache.len(), cache.evictions()), (2, 1));
    }

    #[test]
    fn capacity_one_keeps_the_newest_entry() {
        let cache = PlanCache::with_capacity(1);
        let g = star(5.0);
        cache.resolve("a", &g, dummy_plan);
        cache.resolve("b", &g, dummy_plan);
        assert_eq!((cache.len(), cache.evictions()), (1, 1));
        assert_eq!(
            cache.resolve("b", &g, || unreachable!()).1,
            CacheStatus::Hit
        );
    }
}
