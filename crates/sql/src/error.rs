//! Spanned SQL errors with caret diagnostics.

use bqo_storage::{DataType, StorageError};
use std::fmt;

/// A half-open byte range `start..end` into the original SQL text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    /// Creates a span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        Span {
            start,
            end: end.max(start),
        }
    }

    /// A zero-width span at one position (rendered as a single caret).
    pub fn point(at: usize) -> Self {
        Span::new(at, at)
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span::new(self.start.min(other.start), self.end.max(other.end))
    }
}

/// What went wrong while lexing, parsing or binding a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlErrorKind {
    /// Lexical or grammatical error; the message names the expectation.
    Syntax(String),
    /// A `FROM`/`JOIN` table (or a column qualifier) names no catalog table
    /// and no alias in scope.
    UnknownTable { name: String },
    /// A column reference resolves to a table that has no such column
    /// (`table` is `None` when no table in scope has the column).
    UnknownColumn { name: String, table: Option<String> },
    /// An unqualified column exists in more than one table in scope.
    AmbiguousColumn {
        name: String,
        candidates: Vec<String>,
    },
    /// Two `FROM`/`JOIN` items share one exposed name.
    DuplicateAlias { name: String },
    /// One table is referenced twice (self-joins are not supported by the
    /// execution engine).
    DuplicateTable { name: String },
    /// A `WHERE` literal's type is incompatible with its column's type.
    TypeMismatch {
        column: String,
        expected: DataType,
        found: DataType,
    },
    /// An `ON` condition that cannot lower to an equi-join edge.
    InvalidJoin(String),
}

impl SqlErrorKind {
    fn message(&self) -> String {
        match self {
            SqlErrorKind::Syntax(msg) => msg.clone(),
            SqlErrorKind::UnknownTable { name } => {
                format!("unknown table or alias `{name}`")
            }
            SqlErrorKind::UnknownColumn {
                name,
                table: Some(table),
            } => format!("column `{name}` does not exist in table `{table}`"),
            SqlErrorKind::UnknownColumn { name, table: None } => {
                format!("column `{name}` does not exist in any table in scope")
            }
            SqlErrorKind::AmbiguousColumn { name, candidates } => format!(
                "column `{name}` is ambiguous; it exists in tables {}",
                candidates
                    .iter()
                    .map(|t| format!("`{t}`"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            SqlErrorKind::DuplicateAlias { name } => {
                format!("duplicate table alias `{name}`")
            }
            SqlErrorKind::DuplicateTable { name } => format!(
                "table `{name}` is referenced more than once (self-joins are not supported)"
            ),
            SqlErrorKind::TypeMismatch {
                column,
                expected,
                found,
            } => format!(
                "type mismatch: column `{column}` has type {expected}, literal has type {found}"
            ),
            SqlErrorKind::InvalidJoin(msg) => msg.clone(),
        }
    }
}

/// A lexing/parsing/binding error carrying the offending [`Span`] and a
/// rendered caret diagnostic pointing into the original SQL text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    kind: SqlErrorKind,
    span: Span,
    diagnostic: String,
}

impl SqlError {
    /// Builds an error, rendering the caret diagnostic against `sql`.
    pub fn new(kind: SqlErrorKind, span: Span, sql: &str) -> Self {
        let diagnostic = render_diagnostic(&kind.message(), span, sql);
        SqlError {
            kind,
            span,
            diagnostic,
        }
    }

    /// The error category and its payload.
    pub fn kind(&self) -> &SqlErrorKind {
        &self.kind
    }

    /// The byte range of the offending fragment in the original SQL.
    pub fn span(&self) -> Span {
        self.span
    }

    /// Maps the error onto the engine's [`StorageError`] vocabulary so SQL
    /// planning failures travel the same error channel as spec planning
    /// failures. Structured name-resolution and type errors keep their
    /// variants; everything else carries the full caret diagnostic.
    pub fn to_storage(&self) -> StorageError {
        match &self.kind {
            SqlErrorKind::UnknownTable { name } => StorageError::TableNotFound {
                table: name.clone(),
            },
            SqlErrorKind::UnknownColumn {
                name,
                table: Some(table),
            } => StorageError::ColumnNotFound {
                table: table.clone(),
                column: name.clone(),
            },
            SqlErrorKind::TypeMismatch {
                expected, found, ..
            } => StorageError::TypeMismatch {
                expected: expected.to_string(),
                actual: found.to_string(),
            },
            _ => StorageError::InvalidArgument(self.diagnostic.clone()),
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.diagnostic)
    }
}

impl std::error::Error for SqlError {}

/// Renders `message` plus the source line containing `span` with carets
/// underneath the offending fragment:
///
/// ```text
/// unknown table or alias `nope` (line 1, column 15)
///   | SELECT * FROM nope
///   |               ^^^^
/// ```
fn render_diagnostic(message: &str, span: Span, sql: &str) -> String {
    let start = span.start.min(sql.len());
    let line_start = sql[..start].rfind('\n').map_or(0, |i| i + 1);
    let line_end = sql[start..].find('\n').map_or(sql.len(), |i| start + i);
    let line = &sql[line_start..line_end];
    let line_no = sql[..start].matches('\n').count() + 1;
    let col = sql[line_start..start].chars().count() + 1;
    let caret_width = sql[start..span.end.min(line_end)].chars().count().max(1);
    format!(
        "{message} (line {line_no}, column {col})\n  | {line}\n  | {}{}",
        " ".repeat(col - 1),
        "^".repeat(caret_width)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostic_points_at_the_fragment() {
        let sql = "SELECT * FROM nope";
        let err = SqlError::new(
            SqlErrorKind::UnknownTable {
                name: "nope".into(),
            },
            Span::new(14, 18),
            sql,
        );
        let rendered = err.to_string();
        assert!(
            rendered.contains("unknown table or alias `nope`"),
            "{rendered}"
        );
        assert!(rendered.contains("(line 1, column 15)"), "{rendered}");
        assert!(rendered.contains("SELECT * FROM nope"), "{rendered}");
        assert!(rendered.contains("^^^^"), "{rendered}");
        assert_eq!(err.span(), Span::new(14, 18));
    }

    #[test]
    fn diagnostic_handles_multiline_sql_and_eof_spans() {
        let sql = "SELECT *\nFROM t WHERE";
        let err = SqlError::new(
            SqlErrorKind::Syntax("expected a predicate".into()),
            Span::point(sql.len()),
            sql,
        );
        let rendered = err.to_string();
        assert!(rendered.contains("(line 2, column 13)"), "{rendered}");
        assert!(rendered.ends_with('^'), "{rendered}");
    }

    #[test]
    fn storage_mapping_keeps_structured_variants() {
        let sql = "SELECT * FROM t";
        let unknown_table = SqlError::new(
            SqlErrorKind::UnknownTable { name: "t".into() },
            Span::new(14, 15),
            sql,
        );
        assert!(matches!(
            unknown_table.to_storage(),
            StorageError::TableNotFound { ref table } if table == "t"
        ));
        let unknown_col = SqlError::new(
            SqlErrorKind::UnknownColumn {
                name: "c".into(),
                table: Some("t".into()),
            },
            Span::new(7, 8),
            sql,
        );
        assert!(matches!(
            unknown_col.to_storage(),
            StorageError::ColumnNotFound { ref table, ref column } if table == "t" && column == "c"
        ));
        let mismatch = SqlError::new(
            SqlErrorKind::TypeMismatch {
                column: "c".into(),
                expected: DataType::Int64,
                found: DataType::Utf8,
            },
            Span::new(7, 8),
            sql,
        );
        assert!(matches!(
            mismatch.to_storage(),
            StorageError::TypeMismatch { .. }
        ));
        let syntax = SqlError::new(SqlErrorKind::Syntax("boom".into()), Span::point(0), sql);
        assert!(matches!(
            syntax.to_storage(),
            StorageError::InvalidArgument(ref m) if m.contains("boom")
        ));
    }

    #[test]
    fn span_accessors() {
        assert_eq!(Span::new(3, 1), Span { start: 3, end: 3 });
        assert_eq!(Span::point(5), Span { start: 5, end: 5 });
        assert_eq!(Span::new(2, 4).to(Span::new(7, 9)), Span::new(2, 9));
    }
}
