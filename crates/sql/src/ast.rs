//! Spanned abstract syntax tree for the SQL subset.
//!
//! Every name-bearing node carries the byte [`Span`] it was parsed from so
//! the binder can point error carets at the exact offending fragment.

use crate::error::Span;
use bqo_plan::CompareOp;
use bqo_storage::Value;

/// An identifier with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ident {
    pub text: String,
    pub span: Span,
}

/// A possibly qualified column reference (`x` or `a.x`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnName {
    pub qualifier: Option<Ident>,
    pub column: Ident,
}

impl ColumnName {
    /// The span covering the whole reference (qualifier included).
    pub fn span(&self) -> Span {
        match &self.qualifier {
            Some(q) => q.span.to(self.column.span),
            None => self.column.span,
        }
    }
}

/// The SELECT list: `*` or an explicit column list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Projection {
    Star,
    Columns(Vec<ColumnName>),
}

/// A `FROM`/`JOIN` item: a table name with an optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    pub table: Ident,
    pub alias: Option<Ident>,
}

impl TableRef {
    /// The name this item is addressable by in the rest of the query.
    pub fn exposed_name(&self) -> &Ident {
        self.alias.as_ref().unwrap_or(&self.table)
    }
}

/// How a joined table relates to the tables before it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// `[INNER] JOIN ... ON <conditions>`
    Inner,
    /// `CROSS JOIN` (no conditions).
    Cross,
}

/// One `col = col` equality inside an `ON` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinOn {
    pub left: ColumnName,
    pub right: ColumnName,
}

impl JoinOn {
    /// The span covering the whole condition.
    pub fn span(&self) -> Span {
        self.left.span().to(self.right.span())
    }
}

/// One `JOIN` clause: the joined table and its `ON` conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinClause {
    pub kind: JoinKind,
    pub table: TableRef,
    pub conditions: Vec<JoinOn>,
}

/// The right-hand side of a `WHERE` comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarValue {
    /// A typed literal.
    Literal(Value),
    /// A `$name` parameter placeholder.
    Param(String),
}

/// A spanned scalar.
#[derive(Debug, Clone, PartialEq)]
pub struct Scalar {
    pub value: ScalarValue,
    pub span: Span,
}

/// One `WHERE` conjunct: `column <op> literal-or-param`.
#[derive(Debug, Clone, PartialEq)]
pub struct WherePredicate {
    pub column: ColumnName,
    pub op: CompareOp,
    pub value: Scalar,
}

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStatement {
    pub projection: Projection,
    pub from: TableRef,
    pub joins: Vec<JoinClause>,
    pub selection: Vec<WherePredicate>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_cover_qualified_names() {
        let col = ColumnName {
            qualifier: Some(Ident {
                text: "a".into(),
                span: Span::new(0, 1),
            }),
            column: Ident {
                text: "x".into(),
                span: Span::new(2, 3),
            },
        };
        assert_eq!(col.span(), Span::new(0, 3));
        let bare = ColumnName {
            qualifier: None,
            column: Ident {
                text: "x".into(),
                span: Span::new(2, 3),
            },
        };
        assert_eq!(bare.span(), Span::new(2, 3));
    }

    #[test]
    fn exposed_name_prefers_the_alias() {
        let t = Ident {
            text: "sales".into(),
            span: Span::new(0, 5),
        };
        let a = Ident {
            text: "s".into(),
            span: Span::new(9, 10),
        };
        let no_alias = TableRef {
            table: t.clone(),
            alias: None,
        };
        assert_eq!(no_alias.exposed_name().text, "sales");
        let aliased = TableRef {
            table: t,
            alias: Some(a),
        };
        assert_eq!(aliased.exposed_name().text, "s");
    }
}
