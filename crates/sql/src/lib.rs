//! SQL frontend for the bitvector-aware query engine.
//!
//! A hand-written lexer, a recursive-descent parser producing a spanned AST,
//! and a catalog-aware binder that lowers to the planner's
//! [`bqo_plan::QuerySpec`] — the same machinery hand-built queries use, so
//! everything downstream (fingerprint-keyed plan caching, `$param`
//! templates with bind-time selectivity re-derivation, bitvector pushdown,
//! morsel-parallel execution) works identically for SQL text.
//!
//! Supported grammar:
//!
//! ```text
//! SELECT <cols|*>
//! FROM t1 [AS a]
//! [[INNER] JOIN t2 [AS b] ON a.x = b.y [AND ...] | CROSS JOIN t3 [AS c]]*
//! [WHERE <col> <op> <literal|$param> [AND ...]]
//! ```
//!
//! with `<op>` one of `= <> != < <= > >=`, literals being integers, floats
//! (including scientific notation), single-quoted strings (`''` escapes a
//! quote) and `TRUE`/`FALSE`. Errors at every stage carry a byte [`Span`]
//! and render a caret diagnostic pointing into the original text:
//!
//! ```text
//! unknown table or alias `nope` (line 1, column 15)
//!   | SELECT * FROM nope
//!   |               ^^^^
//! ```
//!
//! Entry points: [`parse`] (SQL → AST), [`lower`] (SQL → `QuerySpec`), or —
//! for most callers — `Engine::prepare_sql` / `Engine::bind_sql` in
//! `bqo-core`, which add plan caching and execution.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_debug_implementations)]

pub mod ast;
mod binder;
mod error;
mod lexer;
mod parser;

pub use binder::{bind, lower, query_label};
pub use error::{Span, SqlError, SqlErrorKind};
pub use lexer::{lex, Token, TokenKind};
pub use parser::parse;
