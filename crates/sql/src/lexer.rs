//! Hand-written lexer for the SQL subset.
//!
//! Produces a flat, spanned token stream. Keywords are *not* distinguished
//! here — they are ordinary identifiers matched case-insensitively by the
//! parser — so column names that happen to collide with keywords still lex.

use crate::error::{Span, SqlError, SqlErrorKind};

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (`[A-Za-z_][A-Za-z0-9_]*`).
    Ident(String),
    /// Integer literal (optionally signed).
    Int(i64),
    /// Float literal (optionally signed; `2.5`, `1e-3`, `4.0e2`).
    Float(f64),
    /// Single-quoted string literal, `''` unescaped to `'`.
    Str(String),
    /// `$name` parameter placeholder.
    Param(String),
    /// `*`
    Star,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

/// A token plus the byte range it was lexed from.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

/// Lexes `sql` into a token vector ending with a single [`TokenKind::Eof`].
pub fn lex(sql: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b',' => {
                tokens.push(symbol(TokenKind::Comma, i, 1));
                i += 1;
            }
            b'.' => {
                tokens.push(symbol(TokenKind::Dot, i, 1));
                i += 1;
            }
            b'*' => {
                tokens.push(symbol(TokenKind::Star, i, 1));
                i += 1;
            }
            b'=' => {
                tokens.push(symbol(TokenKind::Eq, i, 1));
                i += 1;
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(symbol(TokenKind::Le, i, 2));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(symbol(TokenKind::NotEq, i, 2));
                    i += 2;
                } else {
                    tokens.push(symbol(TokenKind::Lt, i, 1));
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(symbol(TokenKind::Ge, i, 2));
                    i += 2;
                } else {
                    tokens.push(symbol(TokenKind::Gt, i, 1));
                    i += 1;
                }
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(symbol(TokenKind::NotEq, i, 2));
                    i += 2;
                } else {
                    return Err(SqlError::new(
                        SqlErrorKind::Syntax(
                            "unexpected character `!` (did you mean `!=`?)".into(),
                        ),
                        Span::new(i, i + 1),
                        sql,
                    ));
                }
            }
            b'\'' => {
                let (token, next) = lex_string(sql, i)?;
                tokens.push(token);
                i = next;
            }
            b'$' => {
                let start = i + 1;
                let end = ident_end(bytes, start);
                if end == start {
                    return Err(SqlError::new(
                        SqlErrorKind::Syntax("expected a parameter name after `$`".into()),
                        Span::new(i, i + 1),
                        sql,
                    ));
                }
                tokens.push(Token {
                    kind: TokenKind::Param(sql[start..end].to_string()),
                    span: Span::new(i, end),
                });
                i = end;
            }
            b'-' => {
                if bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
                    let (token, next) = lex_number(sql, i)?;
                    tokens.push(token);
                    i = next;
                } else {
                    return Err(SqlError::new(
                        SqlErrorKind::Syntax(
                            "unexpected character `-` (only signed numeric literals)".into(),
                        ),
                        Span::new(i, i + 1),
                        sql,
                    ));
                }
            }
            b'0'..=b'9' => {
                let (token, next) = lex_number(sql, i)?;
                tokens.push(token);
                i = next;
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let end = ident_end(bytes, i);
                tokens.push(Token {
                    kind: TokenKind::Ident(sql[i..end].to_string()),
                    span: Span::new(i, end),
                });
                i = end;
            }
            _ => {
                let ch = sql[i..].chars().next().unwrap_or('?');
                return Err(SqlError::new(
                    SqlErrorKind::Syntax(format!("unexpected character `{ch}`")),
                    Span::new(i, i + ch.len_utf8()),
                    sql,
                ));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span::point(sql.len()),
    });
    Ok(tokens)
}

fn symbol(kind: TokenKind, at: usize, len: usize) -> Token {
    Token {
        kind,
        span: Span::new(at, at + len),
    }
}

fn ident_end(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
        i += 1;
    }
    i
}

/// Lexes a single-quoted string starting at the opening quote; `''` inside
/// the literal unescapes to one `'`.
fn lex_string(sql: &str, start: usize) -> Result<(Token, usize), SqlError> {
    let bytes = sql.as_bytes();
    let mut out = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == b'\'' {
            if bytes.get(i + 1) == Some(&b'\'') {
                out.push('\'');
                i += 2;
            } else {
                return Ok((
                    Token {
                        kind: TokenKind::Str(out),
                        span: Span::new(start, i + 1),
                    },
                    i + 1,
                ));
            }
        } else {
            let ch = sql[i..].chars().next().expect("in-bounds char");
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    Err(SqlError::new(
        SqlErrorKind::Syntax("unterminated string literal".into()),
        Span::new(start, sql.len()),
        sql,
    ))
}

/// Lexes a numeric literal (optional leading `-`): integer unless it has a
/// fractional part or an exponent. A signed integer that overflows `i64` is
/// a spanned error, not a silent float.
fn lex_number(sql: &str, start: usize) -> Result<(Token, usize), SqlError> {
    let bytes = sql.as_bytes();
    let mut i = start;
    if bytes[i] == b'-' {
        i += 1;
    }
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    let mut is_float = false;
    if i < bytes.len() && bytes[i] == b'.' && bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
        is_float = true;
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            is_float = true;
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    let text = &sql[start..i];
    let span = Span::new(start, i);
    let kind = if is_float {
        let v: f64 = text.parse().map_err(|_| {
            SqlError::new(
                SqlErrorKind::Syntax(format!("invalid float literal `{text}`")),
                span,
                sql,
            )
        })?;
        TokenKind::Float(v)
    } else {
        let v: i64 = text.parse().map_err(|_| {
            SqlError::new(
                SqlErrorKind::Syntax(format!("integer literal `{text}` is out of range")),
                span,
                sql,
            )
        })?;
        TokenKind::Int(v)
    };
    Ok((Token { kind, span }, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        lex(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_a_full_query() {
        let toks = kinds("SELECT * FROM t AS a WHERE a.x >= -2 AND y <> 'it''s' ");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Star,
                TokenKind::Ident("FROM".into()),
                TokenKind::Ident("t".into()),
                TokenKind::Ident("AS".into()),
                TokenKind::Ident("a".into()),
                TokenKind::Ident("WHERE".into()),
                TokenKind::Ident("a".into()),
                TokenKind::Dot,
                TokenKind::Ident("x".into()),
                TokenKind::Ge,
                TokenKind::Int(-2),
                TokenKind::Ident("AND".into()),
                TokenKind::Ident("y".into()),
                TokenKind::NotEq,
                TokenKind::Str("it's".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers_and_params() {
        assert_eq!(
            kinds("3 -7 2.5 -0.5 1e-3 4.0E2 $cap"),
            vec![
                TokenKind::Int(3),
                TokenKind::Int(-7),
                TokenKind::Float(2.5),
                TokenKind::Float(-0.5),
                TokenKind::Float(1e-3),
                TokenKind::Float(4.0e2),
                TokenKind::Param("cap".into()),
                TokenKind::Eof,
            ]
        );
        // i64::MIN round-trips because the sign is part of the literal.
        assert_eq!(
            kinds("-9223372036854775808"),
            vec![TokenKind::Int(i64::MIN), TokenKind::Eof]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("= <> != < <= > >="),
            vec![
                TokenKind::Eq,
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexical_errors_are_spanned() {
        let err = lex("SELECT ^").unwrap_err();
        assert!(err.to_string().contains("unexpected character `^`"));
        assert_eq!(err.span(), Span::new(7, 8));
        assert!(lex("'open")
            .unwrap_err()
            .to_string()
            .contains("unterminated"));
        assert!(lex("$ x")
            .unwrap_err()
            .to_string()
            .contains("parameter name"));
        assert!(lex("9223372036854775808")
            .unwrap_err()
            .to_string()
            .contains("out of range"));
        assert!(lex("a ! b").unwrap_err().to_string().contains("`!`"));
        assert!(lex("a - b").unwrap_err().to_string().contains("`-`"));
    }

    #[test]
    fn dot_after_integer_stays_a_dot() {
        // `3.` is an integer followed by a dot (no grammar production uses
        // it, but the lexer must not panic or mis-parse).
        assert_eq!(
            kinds("3."),
            vec![TokenKind::Int(3), TokenKind::Dot, TokenKind::Eof]
        );
    }
}
