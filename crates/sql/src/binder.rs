//! Binds a parsed [`SelectStatement`] against a [`Catalog`] and lowers it to
//! the planner's [`QuerySpec`].
//!
//! The binder resolves table names and aliases, resolves (possibly
//! unqualified) column references, type-checks `WHERE` literals against
//! column types, and rejects everything the execution engine cannot run
//! (self-joins, non-equi joins) — all with spanned caret diagnostics.
//!
//! Lowering notes:
//!
//! * Tables enter the [`QuerySpec`] in `FROM`/`JOIN` order. Physical plans
//!   number relations positionally, so a SQL query and a hand-built spec
//!   listing the same tables in the same order produce bit-identical result
//!   batches.
//! * The projection is name-resolved and validated, but the engine's
//!   pipeline has no projection operator yet: execution returns the full
//!   joined row. `SELECT a, b` therefore validates `a` and `b` and executes
//!   like `SELECT *`.
//! * `$param` placeholders lower to parameterized predicates; binding them
//!   (`Engine::bind_sql`) re-derives selectivities for the bound literals
//!   exactly like hand-built templates.

use crate::ast::{ColumnName, Projection, ScalarValue, SelectStatement, TableRef};
use crate::error::{SqlError, SqlErrorKind};
use crate::parser::parse;
use bqo_plan::{ColumnPredicate, QuerySpec};
use bqo_storage::{Catalog, DataType, Value};

/// Parses and binds `sql`, returning the lowered [`QuerySpec`]. The spec is
/// named with [`query_label`]`(sql)`.
pub fn lower(sql: &str, catalog: &Catalog) -> Result<QuerySpec, SqlError> {
    let stmt = parse(sql)?;
    bind(sql, &stmt, catalog)
}

/// A compact, single-line label for a SQL query: whitespace collapsed and
/// truncated to 64 characters. Used as the lowered spec's name, so errors
/// and stats quote the query itself.
pub fn query_label(sql: &str) -> String {
    let mut label = String::new();
    for word in sql.split_whitespace() {
        if !label.is_empty() {
            label.push(' ');
        }
        label.push_str(word);
    }
    if label.chars().count() > 64 {
        let mut truncated: String = label.chars().take(61).collect();
        truncated.push_str("...");
        truncated
    } else {
        label
    }
}

/// One in-scope table: its exposed name (alias or table name) and the
/// catalog table it stands for.
struct ScopeEntry {
    exposed: String,
    table: String,
}

struct Binder<'a> {
    sql: &'a str,
    catalog: &'a Catalog,
    scope: Vec<ScopeEntry>,
}

impl<'a> Binder<'a> {
    fn error(&self, kind: SqlErrorKind, span: crate::error::Span) -> SqlError {
        SqlError::new(kind, span, self.sql)
    }

    /// Checks the table exists and its exposed name is fresh, then adds it
    /// to the scope.
    fn add_table(&mut self, tref: &TableRef) -> Result<(), SqlError> {
        let table = &tref.table.text;
        if self.catalog.table_meta(table).is_err() {
            return Err(self.error(
                SqlErrorKind::UnknownTable {
                    name: table.clone(),
                },
                tref.table.span,
            ));
        }
        let exposed = tref.exposed_name();
        if self.scope.iter().any(|e| e.exposed == exposed.text) {
            return Err(self.error(
                SqlErrorKind::DuplicateAlias {
                    name: exposed.text.clone(),
                },
                exposed.span,
            ));
        }
        if self.scope.iter().any(|e| e.table == *table) {
            return Err(self.error(
                SqlErrorKind::DuplicateTable {
                    name: table.clone(),
                },
                tref.table.span,
            ));
        }
        self.scope.push(ScopeEntry {
            exposed: exposed.text.clone(),
            table: table.clone(),
        });
        Ok(())
    }

    fn has_column(&self, table: &str, column: &str) -> bool {
        self.catalog
            .table_meta(table)
            .map(|meta| meta.schema().contains(column))
            .unwrap_or(false)
    }

    /// Resolves a (possibly qualified) column reference to
    /// `(table_name, column_name)`.
    fn resolve_column(&self, name: &ColumnName) -> Result<(String, String), SqlError> {
        let column = &name.column.text;
        if let Some(qualifier) = &name.qualifier {
            let entry = self
                .scope
                .iter()
                .find(|e| e.exposed == qualifier.text)
                .ok_or_else(|| {
                    self.error(
                        SqlErrorKind::UnknownTable {
                            name: qualifier.text.clone(),
                        },
                        qualifier.span,
                    )
                })?;
            if !self.has_column(&entry.table, column) {
                return Err(self.error(
                    SqlErrorKind::UnknownColumn {
                        name: column.clone(),
                        table: Some(entry.table.clone()),
                    },
                    name.column.span,
                ));
            }
            return Ok((entry.table.clone(), column.clone()));
        }
        let candidates: Vec<&ScopeEntry> = self
            .scope
            .iter()
            .filter(|e| self.has_column(&e.table, column))
            .collect();
        match candidates.as_slice() {
            [] => Err(self.error(
                SqlErrorKind::UnknownColumn {
                    name: column.clone(),
                    table: None,
                },
                name.column.span,
            )),
            [entry] => Ok((entry.table.clone(), column.clone())),
            many => Err(self.error(
                SqlErrorKind::AmbiguousColumn {
                    name: column.clone(),
                    candidates: many.iter().map(|e| e.table.clone()).collect(),
                },
                name.column.span,
            )),
        }
    }

    fn column_type(&self, table: &str, column: &str) -> DataType {
        self.catalog
            .table_meta(table)
            .expect("resolved table exists")
            .schema()
            .field(column)
            .expect("resolved column exists")
            .data_type
    }
}

fn value_type(value: &Value) -> DataType {
    match value {
        Value::Int64(_) => DataType::Int64,
        Value::Float64(_) => DataType::Float64,
        Value::Utf8(_) => DataType::Utf8,
        Value::Bool(_) => DataType::Bool,
    }
}

/// Numeric types compare across each other (the predicate kernels evaluate
/// `Int64` columns against `Float64` literals and vice versa); everything
/// else must match exactly.
fn types_compatible(column: DataType, literal: DataType) -> bool {
    let numeric = |t: DataType| matches!(t, DataType::Int64 | DataType::Float64);
    column == literal || (numeric(column) && numeric(literal))
}

/// Binds a parsed statement against `catalog`. Exposed for callers that
/// already hold an AST; most should use [`lower`].
pub fn bind(sql: &str, stmt: &SelectStatement, catalog: &Catalog) -> Result<QuerySpec, SqlError> {
    let mut binder = Binder {
        sql,
        catalog,
        scope: Vec::new(),
    };

    let mut spec = QuerySpec::new(query_label(sql));

    binder.add_table(&stmt.from)?;
    spec = spec.table(stmt.from.table.text.clone());

    for join in &stmt.joins {
        // The joined table enters the scope before its ON conditions are
        // bound, so conditions may reference it and every earlier table —
        // but not tables joined later.
        binder.add_table(&join.table)?;
        spec = spec.table(join.table.table.text.clone());
        for condition in &join.conditions {
            let (left_table, left_column) = binder.resolve_column(&condition.left)?;
            let (right_table, right_column) = binder.resolve_column(&condition.right)?;
            if left_table == right_table {
                return Err(binder.error(
                    SqlErrorKind::InvalidJoin(format!(
                        "join condition relates table `{left_table}` to itself; \
                         the two sides must come from different tables"
                    )),
                    condition.span(),
                ));
            }
            spec = spec.join(left_table, left_column, right_table, right_column);
        }
    }

    if let Projection::Columns(columns) = &stmt.projection {
        for column in columns {
            binder.resolve_column(column)?;
        }
    }

    for predicate in &stmt.selection {
        let (table, column) = binder.resolve_column(&predicate.column)?;
        match &predicate.value.value {
            ScalarValue::Literal(value) => {
                let column_type = binder.column_type(&table, &column);
                let literal_type = value_type(value);
                if !types_compatible(column_type, literal_type) {
                    return Err(binder.error(
                        SqlErrorKind::TypeMismatch {
                            column: column.clone(),
                            expected: column_type,
                            found: literal_type,
                        },
                        predicate.value.span,
                    ));
                }
                spec = spec.predicate(
                    table,
                    ColumnPredicate::new(column, predicate.op, value.clone()),
                );
            }
            ScalarValue::Param(name) => {
                spec = spec.param_predicate(table, column, predicate.op, name.clone());
            }
        }
    }

    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqo_plan::{CompareOp, Params, PredicateValue};
    use bqo_storage::TableBuilder;

    fn catalog() -> Catalog {
        let mut catalog = Catalog::new();
        catalog.register_table(
            TableBuilder::new("item")
                .with_i64("item_sk", vec![0, 1, 2])
                .with_f64("price", vec![1.0, 2.0, 3.0])
                .with_utf8("label", vec!["a".into(), "b".into(), "c".into()])
                .build()
                .unwrap(),
        );
        catalog.register_table(
            TableBuilder::new("sales")
                .with_i64("item_sk", vec![0, 1, 1])
                .with_i64("qty", vec![5, 6, 7])
                .with_bool("returned", vec![false, true, false])
                .build()
                .unwrap(),
        );
        catalog.declare_primary_key("item", "item_sk").unwrap();
        catalog
    }

    #[test]
    fn lowers_joins_predicates_and_params_in_order() {
        let catalog = catalog();
        let spec = lower(
            "SELECT * FROM sales AS s JOIN item i ON s.item_sk = i.item_sk \
             WHERE i.price < 2.5 AND qty >= $min AND returned = FALSE",
            &catalog,
        )
        .unwrap();
        assert_eq!(spec.tables, vec!["sales", "item"]);
        assert_eq!(spec.joins.len(), 1);
        assert_eq!(spec.joins[0].left_table, "sales");
        assert_eq!(spec.joins[0].right_table, "item");
        let item_preds = &spec.predicates["item"];
        assert_eq!(item_preds.len(), 1);
        assert_eq!(item_preds[0].op, CompareOp::Lt);
        let sales_preds = &spec.predicates["sales"];
        assert_eq!(sales_preds.len(), 2);
        assert_eq!(
            sales_preds[0].value,
            PredicateValue::Param("min".to_string())
        );
        assert_eq!(
            sales_preds[1].value,
            PredicateValue::Literal(Value::Bool(false))
        );
        // The template binds like any hand-built parameterized spec.
        assert!(spec.is_parameterized());
        let bound = spec.bind(&Params::new().set("min", 6i64)).unwrap();
        assert!(!bound.is_parameterized());
    }

    #[test]
    fn unqualified_columns_resolve_and_ambiguity_is_rejected() {
        let catalog = catalog();
        // `price` exists only in item: resolves unqualified.
        let spec = lower(
            "SELECT * FROM sales JOIN item ON sales.item_sk = item.item_sk WHERE price > 1.5",
            &catalog,
        )
        .unwrap();
        assert!(spec.predicates.contains_key("item"));
        // `item_sk` exists in both: ambiguous.
        let err = lower(
            "SELECT * FROM sales JOIN item ON sales.item_sk = item.item_sk WHERE item_sk = 1",
            &catalog,
        )
        .unwrap_err();
        assert!(
            matches!(err.kind(), SqlErrorKind::AmbiguousColumn { name, candidates }
                if name == "item_sk" && candidates.len() == 2),
            "{err}"
        );
        assert!(err.to_string().contains("ambiguous"), "{err}");
    }

    #[test]
    fn name_resolution_errors_are_specific() {
        let catalog = catalog();
        let err = lower("SELECT * FROM nope", &catalog).unwrap_err();
        assert!(matches!(err.kind(), SqlErrorKind::UnknownTable { name } if name == "nope"));
        let err = lower("SELECT * FROM item WHERE missing = 1", &catalog).unwrap_err();
        assert!(
            matches!(err.kind(), SqlErrorKind::UnknownColumn { name, table: None } if name == "missing")
        );
        let err = lower("SELECT * FROM item WHERE item.missing = 1", &catalog).unwrap_err();
        assert!(matches!(
            err.kind(),
            SqlErrorKind::UnknownColumn { table: Some(t), .. } if t == "item"
        ));
        let err = lower("SELECT * FROM item WHERE ghost.price = 1", &catalog).unwrap_err();
        assert!(matches!(err.kind(), SqlErrorKind::UnknownTable { name } if name == "ghost"));
        let err = lower("SELECT ghost FROM item", &catalog).unwrap_err();
        assert!(matches!(err.kind(), SqlErrorKind::UnknownColumn { .. }));
    }

    #[test]
    fn duplicate_aliases_and_self_joins_are_rejected() {
        let catalog = catalog();
        let err = lower(
            "SELECT * FROM sales AS t JOIN item AS t ON t.item_sk = t.item_sk",
            &catalog,
        )
        .unwrap_err();
        assert!(matches!(err.kind(), SqlErrorKind::DuplicateAlias { name } if name == "t"));
        let err = lower(
            "SELECT * FROM item AS a JOIN item AS b ON a.item_sk = b.item_sk",
            &catalog,
        )
        .unwrap_err();
        assert!(matches!(err.kind(), SqlErrorKind::DuplicateTable { name } if name == "item"));
        let err = lower(
            "SELECT * FROM sales JOIN item ON sales.item_sk = sales.qty",
            &catalog,
        )
        .unwrap_err();
        assert!(matches!(err.kind(), SqlErrorKind::InvalidJoin(_)), "{err}");
    }

    #[test]
    fn literal_types_are_checked() {
        let catalog = catalog();
        // Numeric cross-typing is allowed both ways.
        assert!(lower("SELECT * FROM item WHERE price < 2", &catalog).is_ok());
        assert!(lower("SELECT * FROM sales WHERE qty < 2.5", &catalog).is_ok());
        // Anything else is a spanned type mismatch.
        let err = lower("SELECT * FROM item WHERE price = 'cheap'", &catalog).unwrap_err();
        assert!(
            matches!(err.kind(), SqlErrorKind::TypeMismatch { column, .. } if column == "price"),
            "{err}"
        );
        assert!(err.to_string().contains("type mismatch"), "{err}");
        let err = lower("SELECT * FROM sales WHERE returned = 1", &catalog).unwrap_err();
        assert!(matches!(err.kind(), SqlErrorKind::TypeMismatch { .. }));
        let err = lower("SELECT * FROM item WHERE label = TRUE", &catalog).unwrap_err();
        assert!(matches!(err.kind(), SqlErrorKind::TypeMismatch { .. }));
    }

    #[test]
    fn on_conditions_cannot_reference_later_tables() {
        let catalog = catalog();
        let err = lower(
            "SELECT * FROM sales JOIN item ON sales.item_sk = store.item_sk",
            &catalog,
        )
        .unwrap_err();
        assert!(matches!(err.kind(), SqlErrorKind::UnknownTable { name } if name == "store"));
    }

    #[test]
    fn query_label_collapses_and_truncates() {
        assert_eq!(query_label("  SELECT *\n  FROM t  "), "SELECT * FROM t");
        let long = format!("SELECT * FROM t WHERE {}", "x = 1 AND ".repeat(20));
        let label = query_label(&long);
        assert_eq!(label.chars().count(), 64);
        assert!(label.ends_with("..."));
    }
}
