//! Recursive-descent parser for the SQL subset:
//!
//! ```text
//! statement  := SELECT projection FROM table_ref join* [WHERE predicate (AND predicate)*] EOF
//! projection := '*' | column (',' column)*
//! table_ref  := ident [[AS] ident]
//! join       := [INNER] JOIN table_ref ON condition (AND condition)*
//!             | CROSS JOIN table_ref
//! condition  := column '=' column
//! predicate  := column op scalar
//! column     := ident ['.' ident]
//! scalar     := int | float | string | TRUE | FALSE | '$' ident
//! op         := '=' | '<>' | '!=' | '<' | '<=' | '>' | '>='
//! ```
//!
//! Keywords are matched case-insensitively; identifiers are taken verbatim.

use crate::ast::{
    ColumnName, Ident, JoinClause, JoinKind, JoinOn, Projection, Scalar, ScalarValue,
    SelectStatement, TableRef, WherePredicate,
};
use crate::error::{Span, SqlError, SqlErrorKind};
use crate::lexer::{lex, Token, TokenKind};
use bqo_plan::CompareOp;
use bqo_storage::Value;

/// Keywords that cannot serve as a bare (no `AS`) table alias.
const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "JOIN", "INNER", "CROSS", "ON", "WHERE", "AND", "AS", "TRUE", "FALSE",
];

/// Parses one `SELECT` statement, consuming the entire input.
pub fn parse(sql: &str) -> Result<SelectStatement, SqlError> {
    let tokens = lex(sql)?;
    let mut parser = Parser {
        sql,
        tokens,
        pos: 0,
    };
    parser.select_statement()
}

struct Parser<'a> {
    sql: &'a str,
    tokens: Vec<Token>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn advance(&mut self) -> Token {
        let token = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        token
    }

    fn error(&self, message: impl Into<String>, span: Span) -> SqlError {
        SqlError::new(SqlErrorKind::Syntax(message.into()), span, self.sql)
    }

    /// True if the current token is the given keyword (case-insensitive).
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(text) if text.eq_ignore_ascii_case(kw))
    }

    /// Consumes the given keyword if present.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            let token = self.peek().clone();
            Err(self.error(
                format!("expected `{kw}`, found {}", describe(&token.kind)),
                token.span,
            ))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<Ident, SqlError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(text) => {
                let span = self.advance().span;
                Ok(Ident { text, span })
            }
            other => {
                let span = self.peek().span;
                Err(self.error(format!("expected {what}, found {}", describe(&other)), span))
            }
        }
    }

    fn select_statement(&mut self) -> Result<SelectStatement, SqlError> {
        self.expect_keyword("SELECT")?;
        let projection = self.projection()?;
        self.expect_keyword("FROM")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            if self.eat_keyword("CROSS") {
                self.expect_keyword("JOIN")?;
                let table = self.table_ref()?;
                joins.push(JoinClause {
                    kind: JoinKind::Cross,
                    table,
                    conditions: Vec::new(),
                });
            } else if self.at_keyword("JOIN") || self.at_keyword("INNER") {
                self.eat_keyword("INNER");
                self.expect_keyword("JOIN")?;
                let table = self.table_ref()?;
                self.expect_keyword("ON")?;
                let mut conditions = vec![self.join_condition()?];
                while self.looking_at_and_condition() {
                    self.eat_keyword("AND");
                    conditions.push(self.join_condition()?);
                }
                joins.push(JoinClause {
                    kind: JoinKind::Inner,
                    table,
                    conditions,
                });
            } else {
                break;
            }
        }
        let mut selection = Vec::new();
        if self.eat_keyword("WHERE") {
            selection.push(self.where_predicate()?);
            while self.eat_keyword("AND") {
                selection.push(self.where_predicate()?);
            }
        }
        match &self.peek().kind {
            TokenKind::Eof => Ok(SelectStatement {
                projection,
                from,
                joins,
                selection,
            }),
            other => {
                let span = self.peek().span;
                Err(self.error(
                    format!("unexpected trailing input: {}", describe(other)),
                    span,
                ))
            }
        }
    }

    /// Distinguishes `AND <condition>` (another ON equality) from the end of
    /// the ON clause. An ON conjunct is always `column = column`, so after
    /// `AND` the lookahead `ident [. ident] =` identifies a condition; the
    /// grammar has no other `AND` inside a join clause, so a plain check for
    /// `AND` followed by a non-WHERE context suffices: ON clauses can only be
    /// followed by JOIN/CROSS/WHERE/EOF.
    fn looking_at_and_condition(&self) -> bool {
        self.at_keyword("AND")
    }

    fn projection(&mut self) -> Result<Projection, SqlError> {
        if matches!(self.peek().kind, TokenKind::Star) {
            self.advance();
            return Ok(Projection::Star);
        }
        let mut columns = vec![self.column_name()?];
        while matches!(self.peek().kind, TokenKind::Comma) {
            self.advance();
            columns.push(self.column_name()?);
        }
        Ok(Projection::Columns(columns))
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlError> {
        let table = self.expect_ident("a table name")?;
        let alias = if self.eat_keyword("AS") {
            Some(self.expect_ident("an alias")?)
        } else if let TokenKind::Ident(text) = &self.peek().kind {
            // Bare alias: an identifier that is not a keyword.
            if KEYWORDS.iter().any(|kw| text.eq_ignore_ascii_case(kw)) {
                None
            } else {
                Some(self.expect_ident("an alias")?)
            }
        } else {
            None
        };
        Ok(TableRef { table, alias })
    }

    fn column_name(&mut self) -> Result<ColumnName, SqlError> {
        let first = self.expect_ident("a column name")?;
        if matches!(self.peek().kind, TokenKind::Dot) {
            self.advance();
            let column = self.expect_ident("a column name after `.`")?;
            Ok(ColumnName {
                qualifier: Some(first),
                column,
            })
        } else {
            Ok(ColumnName {
                qualifier: None,
                column: first,
            })
        }
    }

    fn join_condition(&mut self) -> Result<JoinOn, SqlError> {
        let left = self.column_name()?;
        match self.peek().kind {
            TokenKind::Eq => {
                self.advance();
            }
            _ => {
                let span = self.peek().span;
                return Err(self.error(
                    "expected `=` in join condition (only equi-joins are supported)",
                    span,
                ));
            }
        }
        let right = self.column_name()?;
        Ok(JoinOn { left, right })
    }

    fn where_predicate(&mut self) -> Result<WherePredicate, SqlError> {
        let column = self.column_name()?;
        let op = self.compare_op()?;
        let value = self.scalar()?;
        Ok(WherePredicate { column, op, value })
    }

    fn compare_op(&mut self) -> Result<CompareOp, SqlError> {
        let op = match self.peek().kind {
            TokenKind::Eq => CompareOp::Eq,
            TokenKind::NotEq => CompareOp::NotEq,
            TokenKind::Lt => CompareOp::Lt,
            TokenKind::Le => CompareOp::Le,
            TokenKind::Gt => CompareOp::Gt,
            TokenKind::Ge => CompareOp::Ge,
            ref other => {
                let span = self.peek().span;
                return Err(self.error(
                    format!(
                        "expected a comparison operator (= <> != < <= > >=), found {}",
                        describe(other)
                    ),
                    span,
                ));
            }
        };
        self.advance();
        Ok(op)
    }

    fn scalar(&mut self) -> Result<Scalar, SqlError> {
        let token = self.peek().clone();
        let value = match token.kind {
            TokenKind::Int(v) => ScalarValue::Literal(Value::Int64(v)),
            TokenKind::Float(v) => ScalarValue::Literal(Value::Float64(v)),
            TokenKind::Str(ref s) => ScalarValue::Literal(Value::Utf8(s.clone())),
            TokenKind::Param(ref name) => ScalarValue::Param(name.clone()),
            TokenKind::Ident(ref text) if text.eq_ignore_ascii_case("TRUE") => {
                ScalarValue::Literal(Value::Bool(true))
            }
            TokenKind::Ident(ref text) if text.eq_ignore_ascii_case("FALSE") => {
                ScalarValue::Literal(Value::Bool(false))
            }
            ref other => {
                return Err(self.error(
                    format!(
                        "expected a literal or `$param` on the right-hand side, found {}",
                        describe(other)
                    ),
                    token.span,
                ));
            }
        };
        self.advance();
        Ok(Scalar {
            value,
            span: token.span,
        })
    }
}

/// Human-readable token description for error messages.
fn describe(kind: &TokenKind) -> String {
    match kind {
        TokenKind::Ident(text) => format!("`{text}`"),
        TokenKind::Int(v) => format!("`{v}`"),
        TokenKind::Float(v) => format!("`{v}`"),
        TokenKind::Str(s) => format!("'{s}'"),
        TokenKind::Param(name) => format!("`${name}`"),
        TokenKind::Star => "`*`".into(),
        TokenKind::Comma => "`,`".into(),
        TokenKind::Dot => "`.`".into(),
        TokenKind::Eq => "`=`".into(),
        TokenKind::NotEq => "`<>`".into(),
        TokenKind::Lt => "`<`".into(),
        TokenKind::Le => "`<=`".into(),
        TokenKind::Gt => "`>`".into(),
        TokenKind::Ge => "`>=`".into(),
        TokenKind::Eof => "end of input".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let stmt = parse(
            "SELECT s.qty, price FROM sales AS s \
             JOIN item i ON s.item_sk = i.item_sk AND s.batch = i.batch \
             CROSS JOIN store \
             WHERE i.price <= 2.5 AND s.qty <> $q AND i.label = 'x''y' AND flag = TRUE",
        )
        .unwrap();
        assert!(matches!(&stmt.projection, Projection::Columns(cols) if cols.len() == 2));
        assert_eq!(stmt.from.table.text, "sales");
        assert_eq!(stmt.from.alias.as_ref().unwrap().text, "s");
        assert_eq!(stmt.joins.len(), 2);
        assert_eq!(stmt.joins[0].kind, JoinKind::Inner);
        assert_eq!(stmt.joins[0].conditions.len(), 2);
        assert_eq!(stmt.joins[0].table.alias.as_ref().unwrap().text, "i");
        assert_eq!(stmt.joins[1].kind, JoinKind::Cross);
        assert!(stmt.joins[1].conditions.is_empty());
        assert_eq!(stmt.selection.len(), 4);
        assert_eq!(stmt.selection[0].op, CompareOp::Le);
        assert_eq!(
            stmt.selection[0].value.value,
            ScalarValue::Literal(Value::Float64(2.5))
        );
        assert_eq!(
            stmt.selection[1].value.value,
            ScalarValue::Param("q".into())
        );
        assert_eq!(
            stmt.selection[2].value.value,
            ScalarValue::Literal(Value::Utf8("x'y".into()))
        );
        assert_eq!(
            stmt.selection[3].value.value,
            ScalarValue::Literal(Value::Bool(true))
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let stmt = parse("select * from t inner join u on t.a = u.a where t.b = false").unwrap();
        assert_eq!(stmt.joins.len(), 1);
        assert_eq!(
            stmt.selection[0].value.value,
            ScalarValue::Literal(Value::Bool(false))
        );
    }

    #[test]
    fn star_and_column_projections() {
        assert!(matches!(
            parse("SELECT * FROM t").unwrap().projection,
            Projection::Star
        ));
        let stmt = parse("SELECT a.x, y FROM t AS a").unwrap();
        match stmt.projection {
            Projection::Columns(cols) => {
                assert_eq!(cols[0].qualifier.as_ref().unwrap().text, "a");
                assert_eq!(cols[0].column.text, "x");
                assert!(cols[1].qualifier.is_none());
            }
            Projection::Star => panic!("expected columns"),
        }
    }

    #[test]
    fn syntax_errors_name_the_expectation() {
        // `FROM` parses as a (keyword-named) projection column, so the
        // error lands on the missing FROM keyword that follows.
        let err = parse("SELECT FROM t").unwrap_err();
        assert!(err.to_string().contains("expected `FROM`"), "{err}");
        let err = parse("SELECT , FROM t").unwrap_err();
        assert!(err.to_string().contains("expected a column name"), "{err}");
        let err = parse("SELECT * FROM t JOIN u ON t.a < u.a").unwrap_err();
        assert!(err.to_string().contains("only equi-joins"), "{err}");
        let err = parse("SELECT * FROM t WHERE a = b").unwrap_err();
        assert!(err.to_string().contains("literal or `$param`"), "{err}");
        let err = parse("SELECT * FROM t WHERE a LIKE 'x'").unwrap_err();
        assert!(err.to_string().contains("comparison operator"), "{err}");
        let err = parse("SELECT * FROM t extra stuff").unwrap_err();
        assert!(
            err.to_string().contains("unexpected trailing input"),
            "{err}"
        );
        let err = parse("SELECT * FROM t WHERE").unwrap_err();
        assert!(err.to_string().contains("end of input"), "{err}");
    }

    #[test]
    fn bare_alias_does_not_swallow_keywords() {
        let stmt = parse("SELECT * FROM t WHERE x = 1").unwrap();
        assert!(stmt.from.alias.is_none());
        let stmt = parse("SELECT * FROM t u WHERE u.x = 1").unwrap();
        assert_eq!(stmt.from.alias.as_ref().unwrap().text, "u");
    }
}
