//! Exact (no-false-positive) filter.

use crate::hash::FxHashSet;
use crate::BitvectorFilter;

/// A filter backed by a hash set of the inserted keys.
///
/// This is the filter the paper's analysis assumes (Property 4 requires no
/// false positives for the absorption rule to hold with equality). It is also
/// what a bitmap filter over a dense key domain behaves like.
#[derive(Debug, Clone, Default)]
pub struct ExactFilter {
    keys: FxHashSet<i64>,
}

impl ExactFilter {
    /// Creates an empty filter.
    pub fn new() -> Self {
        ExactFilter::default()
    }

    /// Creates an empty filter pre-sized for `expected_keys` insertions.
    pub fn with_capacity(expected_keys: usize) -> Self {
        ExactFilter {
            keys: FxHashSet::with_capacity_and_hasher(expected_keys, Default::default()),
        }
    }

    /// Number of distinct keys stored.
    pub fn distinct(&self) -> usize {
        self.keys.len()
    }
}

impl BitvectorFilter for ExactFilter {
    fn insert(&mut self, key: i64) {
        self.keys.insert(key);
    }

    fn maybe_contains(&self, key: i64) -> bool {
        self.keys.contains(&key)
    }

    // Word-level probe entry point: the set lookup cannot be batched, but
    // overriding keeps the mask assembly loop free of the trait-object
    // indirection the default would pay per key.
    fn probe_word(&self, keys: &[i64]) -> u64 {
        debug_assert!(keys.len() <= 64, "probe_word takes at most 64 keys");
        let mut mask = 0u64;
        for (i, k) in keys.iter().enumerate() {
            mask |= u64::from(self.keys.contains(k)) << i;
        }
        mask
    }

    // Exact range-emptiness: iterate whichever of {stored keys, probe range}
    // is smaller. Width math goes through i128 so extreme bounds cannot
    // overflow.
    fn probe_range_empty(&self, lo: i64, hi: i64) -> bool {
        if lo > hi {
            return true;
        }
        let width = i128::from(hi) - i128::from(lo) + 1;
        // CAST-OK: widening; i128 holds any value involved
        if width <= self.keys.len() as i128 {
            (lo..=hi).all(|k| !self.keys.contains(&k))
        } else {
            self.keys.iter().all(|&k| k < lo || k > hi)
        }
    }

    fn inserted(&self) -> usize {
        self.keys.len()
    }

    fn byte_size(&self) -> usize {
        // Approximation: each entry stores the key plus table overhead.
        self.keys.capacity() * (std::mem::size_of::<i64>() + 8)
    }

    fn expected_fpr(&self) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut f = ExactFilter::new();
        f.insert(1);
        f.insert(2);
        f.insert(2);
        assert_eq!(f.inserted(), 2);
        assert_eq!(f.distinct(), 2);
        assert!(f.maybe_contains(1));
        assert!(f.maybe_contains(2));
        assert!(!f.maybe_contains(3));
    }

    #[test]
    fn never_false_positive() {
        let mut f = ExactFilter::with_capacity(100);
        for i in 0..100 {
            f.insert(i * 2);
        }
        for i in 0..100 {
            assert!(f.maybe_contains(i * 2));
            assert!(!f.maybe_contains(i * 2 + 1));
        }
        assert_eq!(f.expected_fpr(), 0.0);
    }

    #[test]
    fn negative_keys_supported() {
        let mut f = ExactFilter::new();
        f.insert(-42);
        f.insert(i64::MIN);
        assert!(f.maybe_contains(-42));
        assert!(f.maybe_contains(i64::MIN));
        assert!(!f.maybe_contains(i64::MAX));
    }

    #[test]
    fn probe_range_empty_is_exact() {
        let mut f = ExactFilter::new();
        for i in 0..100 {
            f.insert(i * 2);
        }
        // Narrow range (iterates the range) and wide range (iterates the
        // set) must agree with the scalar sweep.
        assert!(f.probe_range_empty(1, 1));
        assert!(!f.probe_range_empty(0, 3));
        assert!(!f.probe_range_empty(i64::MIN, i64::MAX));
        assert!(f.probe_range_empty(199, i64::MAX));
        assert!(f.probe_range_empty(i64::MIN, -1));
        assert!(f.probe_range_empty(10, 9));
    }

    #[test]
    fn byte_size_grows() {
        let mut f = ExactFilter::new();
        let initial = f.byte_size();
        for i in 0..10_000 {
            f.insert(i);
        }
        assert!(f.byte_size() > initial);
    }
}
