//! Bitvector filter implementations for the BQO reproduction.
//!
//! The paper uses "bitvector filter" as an umbrella term for bitmap/hash
//! filters, Bloom filters and their variants (Section 1 and 8). The analysis
//! in Sections 3–5 assumes filters with *no false positives* (Property 4);
//! the execution experiments use real Bloom filters that trade space for a
//! small false-positive rate.
//!
//! This crate provides:
//! * [`RangeBitmapFilter`] — a dense bitmap over the observed key range (with
//!   a hash-set fallback for sparse domains): the classic "bitmap filter" on
//!   surrogate keys, no false positives, the cheapest probe, and the
//!   executor's default.
//! * [`ExactFilter`] — a hash-set based filter with no false positives, used
//!   both by the analytical cost model's assumptions and as a "perfect
//!   filter" ablation in the benchmarks.
//! * [`BloomFilter`] — a classic Bloom filter with configurable bits per key.
//! * [`BlockedBloomFilter`] — a cache-line blocked variant that mirrors the
//!   register-blocked filters used by modern engines.
//! * [`FilterKind`] / [`AnyFilter`] — a small runtime-dispatch wrapper so the
//!   executor can be configured with any of the above.
//!
//! All filters operate on 64-bit keys. Multi-column join keys are combined
//! into one 64-bit hash by the executor before reaching the filter.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod bitmap;
pub mod blocked;
pub mod bloom;
pub mod exact;
pub mod hash;
pub mod stats;

pub use bitmap::RangeBitmapFilter;
pub use blocked::BlockedBloomFilter;
pub use bloom::BloomFilter;
pub use exact::ExactFilter;
pub use hash::{hash_key, hash_pair, FxHasher64};
pub use stats::FilterStats;

/// Common behaviour of all bitvector filter implementations.
pub trait BitvectorFilter: Send + Sync {
    /// Inserts a key (from the build side of a hash join).
    fn insert(&mut self, key: i64);

    /// Tests a key; `false` means the key is definitely absent, `true` means
    /// it is present (exact filter) or probably present (Bloom variants).
    fn maybe_contains(&self, key: i64) -> bool;

    /// Probes up to 64 keys at once, returning a survivor mask: bit `i` is
    /// set iff `maybe_contains(keys[i])` would return true. Bits at
    /// positions `>= keys.len()` are always zero.
    ///
    /// The default delegates to the scalar probe; implementations override
    /// it with loops that hoist representation dispatch and field loads out
    /// of the per-key work. Overrides must stay bit-identical to the scalar
    /// probe — the kernel differential suite pins this.
    ///
    /// # Panics
    /// Debug-asserts `keys.len() <= 64`.
    fn probe_word(&self, keys: &[i64]) -> u64 {
        debug_assert!(keys.len() <= 64, "probe_word takes at most 64 keys");
        let mut mask = 0u64;
        for (i, &k) in keys.iter().enumerate() {
            mask |= (self.maybe_contains(k) as u64) << i;
        }
        mask
    }

    /// Probes an arbitrary number of keys, appending one survivor word per
    /// 64-key chunk to `out` (which is cleared first). Bit `i` of word `w`
    /// corresponds to `keys[w * 64 + i]`; unused high bits of a tail word
    /// are zero.
    fn probe_words(&self, keys: &[i64], out: &mut Vec<u64>) {
        out.clear();
        out.reserve(keys.len().div_ceil(64));
        for chunk in keys.chunks(64) {
            out.push(self.probe_word(chunk));
        }
    }

    /// Returns `true` only when the filter can prove that **every** key in
    /// the inclusive range `[lo, hi]` is definitely absent — i.e.
    /// `maybe_contains(k)` would return `false` for all `lo <= k <= hi`.
    /// Returning `false` carries no information ("cannot prove emptiness"),
    /// so any implementation may fall back to `false` and stay sound.
    ///
    /// This is the zone-map pruning hook: a scan over chunked storage asks
    /// whether a chunk's `[min, max]` key range can survive a pushed-down
    /// filter, and skips reading the chunk when it provably cannot. The
    /// default sweeps `maybe_contains` over narrow ranges (so even
    /// false-positive-prone Bloom variants answer exactly for small zones)
    /// and gives up on wide ones.
    fn probe_range_empty(&self, lo: i64, hi: i64) -> bool {
        if lo > hi {
            return true;
        }
        // Sweeping an unbounded range would turn one pruning decision into
        // billions of probes; beyond this width the default just declines.
        const MAX_SWEEP: i128 = 1024;
        if (hi as i128) - (lo as i128) + 1 > MAX_SWEEP {
            return false;
        }
        (lo..=hi).all(|k| !self.maybe_contains(k))
    }

    /// Number of keys inserted.
    fn inserted(&self) -> usize;

    /// Approximate size of the filter in bytes.
    fn byte_size(&self) -> usize;

    /// Expected false-positive rate given the current load (0 for exact).
    fn expected_fpr(&self) -> f64;
}

/// Which filter implementation the executor should build at hash joins.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FilterKind {
    /// Range bitmap over dense surrogate keys (hash-set fallback for sparse
    /// domains): no false positives, cheapest probe. This is what the
    /// paper's "bitmap or hash filter" amounts to on warehouse schemas and
    /// is the executor's default.
    #[default]
    Bitmap,
    /// Hash-set filter with no false positives (the analysis assumption).
    Exact,
    /// Classic Bloom filter with the given bits per key.
    Bloom {
        /// Filter bits allocated per expected key.
        bits_per_key: usize,
    },
    /// Cache-line blocked Bloom filter with the given bits per key.
    BlockedBloom {
        /// Filter bits allocated per expected key.
        bits_per_key: usize,
    },
}

/// Runtime-dispatched filter built from a [`FilterKind`].
#[derive(Debug, Clone)]
pub enum AnyFilter {
    /// Range-anchored bitmap (or sparse hash set) — no false positives.
    Bitmap(RangeBitmapFilter),
    /// Hash-set filter — no false positives.
    Exact(ExactFilter),
    /// Classic Bloom filter.
    Bloom(BloomFilter),
    /// Cache-line blocked Bloom filter.
    BlockedBloom(BlockedBloomFilter),
}

impl AnyFilter {
    /// Creates a filter of the requested kind sized for `expected_keys`.
    pub fn with_capacity(kind: FilterKind, expected_keys: usize) -> Self {
        match kind {
            // The bitmap needs to see the key range up front; incremental
            // construction uses the (equivalent, slightly slower) exact set.
            FilterKind::Bitmap | FilterKind::Exact => {
                AnyFilter::Exact(ExactFilter::with_capacity(expected_keys))
            }
            FilterKind::Bloom { bits_per_key } => {
                AnyFilter::Bloom(BloomFilter::with_capacity(expected_keys, bits_per_key))
            }
            FilterKind::BlockedBloom { bits_per_key } => AnyFilter::BlockedBloom(
                BlockedBloomFilter::with_capacity(expected_keys, bits_per_key),
            ),
        }
    }

    /// Builds a filter of the requested kind from a slice of keys.
    pub fn from_keys(kind: FilterKind, keys: &[i64]) -> Self {
        if kind == FilterKind::Bitmap {
            return AnyFilter::Bitmap(RangeBitmapFilter::from_keys(keys));
        }
        let mut f = Self::with_capacity(kind, keys.len());
        for &k in keys {
            f.insert(k);
        }
        f
    }
}

impl BitvectorFilter for AnyFilter {
    fn insert(&mut self, key: i64) {
        match self {
            AnyFilter::Bitmap(f) => f.insert(key),
            AnyFilter::Exact(f) => f.insert(key),
            AnyFilter::Bloom(f) => f.insert(key),
            AnyFilter::BlockedBloom(f) => f.insert(key),
        }
    }

    fn maybe_contains(&self, key: i64) -> bool {
        match self {
            AnyFilter::Bitmap(f) => f.maybe_contains(key),
            AnyFilter::Exact(f) => f.maybe_contains(key),
            AnyFilter::Bloom(f) => f.maybe_contains(key),
            AnyFilter::BlockedBloom(f) => f.maybe_contains(key),
        }
    }

    fn probe_word(&self, keys: &[i64]) -> u64 {
        match self {
            AnyFilter::Bitmap(f) => f.probe_word(keys),
            AnyFilter::Exact(f) => f.probe_word(keys),
            AnyFilter::Bloom(f) => f.probe_word(keys),
            AnyFilter::BlockedBloom(f) => f.probe_word(keys),
        }
    }

    // Dispatch once per key slice instead of once per 64-key word.
    fn probe_words(&self, keys: &[i64], out: &mut Vec<u64>) {
        match self {
            AnyFilter::Bitmap(f) => f.probe_words(keys, out),
            AnyFilter::Exact(f) => f.probe_words(keys, out),
            AnyFilter::Bloom(f) => f.probe_words(keys, out),
            AnyFilter::BlockedBloom(f) => f.probe_words(keys, out),
        }
    }

    fn probe_range_empty(&self, lo: i64, hi: i64) -> bool {
        match self {
            AnyFilter::Bitmap(f) => f.probe_range_empty(lo, hi),
            AnyFilter::Exact(f) => f.probe_range_empty(lo, hi),
            AnyFilter::Bloom(f) => f.probe_range_empty(lo, hi),
            AnyFilter::BlockedBloom(f) => f.probe_range_empty(lo, hi),
        }
    }

    fn inserted(&self) -> usize {
        match self {
            AnyFilter::Bitmap(f) => f.inserted(),
            AnyFilter::Exact(f) => f.inserted(),
            AnyFilter::Bloom(f) => f.inserted(),
            AnyFilter::BlockedBloom(f) => f.inserted(),
        }
    }

    fn byte_size(&self) -> usize {
        match self {
            AnyFilter::Bitmap(f) => f.byte_size(),
            AnyFilter::Exact(f) => f.byte_size(),
            AnyFilter::Bloom(f) => f.byte_size(),
            AnyFilter::BlockedBloom(f) => f.byte_size(),
        }
    }

    fn expected_fpr(&self) -> f64 {
        match self {
            AnyFilter::Bitmap(f) => f.expected_fpr(),
            AnyFilter::Exact(f) => f.expected_fpr(),
            AnyFilter::Bloom(f) => f.expected_fpr(),
            AnyFilter::BlockedBloom(f) => f.expected_fpr(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(kind: FilterKind) {
        let keys: Vec<i64> = (0..1000).map(|i| i * 7 + 3).collect();
        let f = AnyFilter::from_keys(kind, &keys);
        assert_eq!(f.inserted(), 1000);
        for &k in &keys {
            assert!(f.maybe_contains(k), "inserted key must be found ({kind:?})");
        }
        assert!(f.byte_size() > 0);
    }

    #[test]
    fn all_kinds_have_no_false_negatives() {
        exercise(FilterKind::Bitmap);
        exercise(FilterKind::Exact);
        exercise(FilterKind::Bloom { bits_per_key: 8 });
        exercise(FilterKind::BlockedBloom { bits_per_key: 8 });
    }

    #[test]
    fn exact_has_no_false_positives() {
        let keys: Vec<i64> = (0..1000).collect();
        let f = AnyFilter::from_keys(FilterKind::Exact, &keys);
        for k in 1000..2000 {
            assert!(!f.maybe_contains(k));
        }
        assert_eq!(f.expected_fpr(), 0.0);
    }

    #[test]
    fn bloom_false_positive_rate_is_bounded() {
        let keys: Vec<i64> = (0..10_000).collect();
        let f = AnyFilter::from_keys(FilterKind::Bloom { bits_per_key: 10 }, &keys);
        let false_positives = (100_000..200_000).filter(|&k| f.maybe_contains(k)).count();
        let fpr = false_positives as f64 / 100_000.0;
        assert!(fpr < 0.05, "observed fpr {fpr} too high for 10 bits/key");
        assert!(f.expected_fpr() < 0.05);
    }

    #[test]
    fn default_kind_is_bitmap() {
        assert_eq!(FilterKind::default(), FilterKind::Bitmap);
    }

    #[test]
    fn probe_words_match_scalar_probes_for_all_kinds() {
        let kinds = [
            FilterKind::Bitmap,
            FilterKind::Exact,
            FilterKind::Bloom { bits_per_key: 8 },
            FilterKind::BlockedBloom { bits_per_key: 8 },
        ];
        for kind in kinds {
            let keys: Vec<i64> = (0..300).map(|i| i * 3).collect();
            let f = AnyFilter::from_keys(kind, &keys);
            // 210 probes: non-word-aligned tail, mix of hits and misses,
            // negative keys.
            let probes: Vec<i64> = (-10..200).collect();
            let mut words = Vec::new();
            f.probe_words(&probes, &mut words);
            assert_eq!(words.len(), probes.len().div_ceil(64));
            for (i, &p) in probes.iter().enumerate() {
                let bit = (words[i / 64] >> (i % 64)) & 1 == 1;
                assert_eq!(bit, f.maybe_contains(p), "{kind:?} key {p}");
            }
            // Tail word's unused high bits stay zero.
            let tail = probes.len() % 64;
            assert_eq!(*words.last().unwrap() >> tail, 0);
            // Empty probe slice produces no words.
            f.probe_words(&[], &mut words);
            assert!(words.is_empty());
        }
    }

    #[test]
    fn probe_word_covers_sparse_bitmap_fallback() {
        let keys: Vec<i64> = (0..100).map(|i| i * 1_000_000_000).collect();
        let f = AnyFilter::from_keys(FilterKind::Bitmap, &keys);
        let probes: Vec<i64> = vec![0, 1, 1_000_000_000, 5, 2_000_000_000];
        let mask = f.probe_word(&probes);
        for (i, &p) in probes.iter().enumerate() {
            assert_eq!((mask >> i) & 1 == 1, f.maybe_contains(p));
        }
    }

    #[test]
    fn probe_range_empty_is_sound_for_all_kinds() {
        // Soundness contract: whenever probe_range_empty says `true`, every
        // scalar probe in the range must be `false`. Exactness (saying
        // `true` whenever it holds) is only required of the exact kinds.
        let kinds = [
            FilterKind::Bitmap,
            FilterKind::Exact,
            FilterKind::Bloom { bits_per_key: 8 },
            FilterKind::BlockedBloom { bits_per_key: 8 },
        ];
        let keys: Vec<i64> = (100..200).map(|i| i * 3).collect();
        for kind in kinds {
            let f = AnyFilter::from_keys(kind, &keys);
            for (lo, hi) in [
                (-50i64, 50i64),
                (0, 299),
                (300, 600),
                (299, 301),
                (601, 10_000),
                (i64::MIN, 0),
                (598, i64::MAX),
                (5, 4), // empty range is trivially empty
            ] {
                if f.probe_range_empty(lo, hi) {
                    // Sweep a bounded window of the claim (the full range
                    // may be astronomically wide; the keys all lie in
                    // [300, 597] so checking near the key span suffices).
                    let sweep_lo = lo.max(250);
                    let sweep_hi = hi.min(650);
                    for k in sweep_lo..=sweep_hi {
                        assert!(
                            !f.maybe_contains(k),
                            "{kind:?} claimed [{lo},{hi}] empty but contains {k}"
                        );
                    }
                }
            }
            // Exact kinds must also be complete on ranges that do hit keys.
            if matches!(kind, FilterKind::Bitmap | FilterKind::Exact) {
                assert!(!f.probe_range_empty(300, 300));
                assert!(!f.probe_range_empty(0, i64::MAX));
                assert!(f.probe_range_empty(301, 302));
                assert!(f.probe_range_empty(i64::MIN, 299));
                assert!(f.probe_range_empty(598, i64::MAX));
            }
        }
    }

    #[test]
    fn bitmap_kind_has_no_false_positives() {
        let keys: Vec<i64> = (0..500).map(|i| i * 2).collect();
        let f = AnyFilter::from_keys(FilterKind::Bitmap, &keys);
        for k in 0..1000 {
            assert_eq!(f.maybe_contains(k), k % 2 == 0 && k < 1000);
        }
    }
}
