//! Runtime counters for bitvector filter effectiveness.

/// Counters accumulated while a filter is probed during execution.
///
/// These drive the Figure 7 overhead profile and the Table 4 style
/// effectiveness reports: how many tuples were checked against a pushed-down
/// bitvector filter and how many were eliminated before reaching the join.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Number of keys tested against the filter.
    pub probed: u64,
    /// Number of keys the filter rejected (eliminated before the join).
    pub eliminated: u64,
}

impl FilterStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        FilterStats::default()
    }

    /// Records one probe and whether it was eliminated.
    #[inline]
    pub fn record(&mut self, eliminated: bool) {
        self.probed += 1;
        if eliminated {
            self.eliminated += 1;
        }
    }

    /// Number of keys that passed the filter.
    pub fn passed(&self) -> u64 {
        self.probed - self.eliminated
    }

    /// Fraction of probed keys that were eliminated (the paper's λ).
    pub fn elimination_rate(&self) -> f64 {
        if self.probed == 0 {
            0.0
        } else {
            self.eliminated as f64 / self.probed as f64
        }
    }

    /// Merges counters from another filter (e.g. across operators).
    pub fn merge(&mut self, other: &FilterStats) {
        self.probed += other.probed;
        self.eliminated += other.eliminated;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_rates() {
        let mut s = FilterStats::new();
        for i in 0..10 {
            s.record(i % 4 == 0);
        }
        assert_eq!(s.probed, 10);
        assert_eq!(s.eliminated, 3);
        assert_eq!(s.passed(), 7);
        assert!((s.elimination_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_rate_is_zero() {
        assert_eq!(FilterStats::new().elimination_rate(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = FilterStats {
            probed: 10,
            eliminated: 2,
        };
        let b = FilterStats {
            probed: 5,
            eliminated: 5,
        };
        a.merge(&b);
        assert_eq!(a.probed, 15);
        assert_eq!(a.eliminated, 7);
    }
}
