//! Classic Bloom filter.

use crate::hash::hash_key;
use crate::BitvectorFilter;

/// A standard Bloom filter over 64-bit keys.
///
/// The filter is sized to the next power of two so probe positions are
/// computed with a bit mask instead of a modulo, and the number of hash
/// functions is capped at four: a probe must stay much cheaper than the hash
/// join probe it short-circuits, which is the whole premise of bitvector
/// filtering (Section 6.3 of the paper derives the break-even from exactly
/// this cost ratio). Two independent digests are derived from the key and
/// combined with the Kirsch–Mitzenmacher double-hashing scheme, so only one
/// expensive mix per probe is needed.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    /// `num_bits - 1`; `num_bits` is always a power of two.
    bit_mask: u64,
    num_bits: u64,
    num_hashes: u32,
    inserted: usize,
}

impl BloomFilter {
    /// Creates a filter sized for `expected_keys` keys at `bits_per_key` bits
    /// per key (rounded up to a power of two). Both values are clamped to
    /// sane minima so tiny builds still work.
    pub fn with_capacity(expected_keys: usize, bits_per_key: usize) -> Self {
        let bits_per_key = bits_per_key.max(1);
        let requested = ((expected_keys.max(1) * bits_per_key) as u64).max(64); // CAST-OK: usize widens losslessly into u64 on supported targets
        let num_bits = requested.next_power_of_two();
        let num_words = (num_bits / 64) as usize; // CAST-OK: bit count is bounded by the filter's in-memory size
        let num_hashes =
            ((bits_per_key as f64 * std::f64::consts::LN_2).round() as u32).clamp(1, 4); // CAST-OK: small positive count; rounded then clamped to 1..=4
        BloomFilter {
            bits: vec![0u64; num_words],
            bit_mask: num_bits - 1,
            num_bits,
            num_hashes,
            inserted: 0,
        }
    }

    /// Number of hash functions used per key.
    pub fn num_hashes(&self) -> u32 {
        self.num_hashes
    }

    /// Total number of bits in the filter.
    pub fn num_bits(&self) -> u64 {
        self.num_bits
    }

    /// Fraction of bits set to one (filter load).
    pub fn load_factor(&self) -> f64 {
        let ones: u64 = self.bits.iter().map(|w| u64::from(w.count_ones())).sum();
        ones as f64 / self.num_bits as f64 // CAST-OK: estimate math; f64 rounding is acceptable here
    }

    #[inline]
    fn probes(&self, key: i64) -> impl Iterator<Item = u64> + '_ {
        let h = hash_key(key);
        let h1 = h & 0xffff_ffff;
        let h2 = (h >> 32) | 1; // force odd so the stride visits all positions
        let mask = self.bit_mask;
        // CAST-OK: u32 widens losslessly into u64
        (0..self.num_hashes as u64).map(move |i| h1.wrapping_add(i.wrapping_mul(h2)) & mask)
    }
}

impl BitvectorFilter for BloomFilter {
    fn insert(&mut self, key: i64) {
        let positions: Vec<u64> = self.probes(key).collect();
        for pos in positions {
            self.bits[(pos / 64) as usize] |= 1u64 << (pos % 64); // CAST-OK: word index; bounded by the range/mask check
        }
        self.inserted += 1;
    }

    fn maybe_contains(&self, key: i64) -> bool {
        self.probes(key)
            // CAST-OK: word index; bounded by the range/mask check
            .all(|pos| self.bits[(pos / 64) as usize] & (1u64 << (pos % 64)) != 0)
    }

    // Word-level probe: hoists the mask / hash-count loads out of the loop
    // and inlines the double-hashing scheme, computing one survivor mask for
    // up to 64 keys. Bit-identical to `maybe_contains` per key.
    fn probe_word(&self, keys: &[i64]) -> u64 {
        debug_assert!(keys.len() <= 64, "probe_word takes at most 64 keys");
        let bit_mask = self.bit_mask;
        let num_hashes = self.num_hashes as u64; // CAST-OK: u32 widens losslessly into u64
        let bits = self.bits.as_slice();
        let mut mask = 0u64;
        for (i, &k) in keys.iter().enumerate() {
            let h = hash_key(k);
            let h1 = h & 0xffff_ffff;
            let h2 = (h >> 32) | 1;
            let mut hit = true;
            for j in 0..num_hashes {
                let pos = h1.wrapping_add(j.wrapping_mul(h2)) & bit_mask;
                // CAST-OK: word index; bounded by the range/mask check
                if bits[(pos / 64) as usize] & (1u64 << (pos % 64)) == 0 {
                    hit = false;
                    break;
                }
            }
            mask |= u64::from(hit) << i;
        }
        mask
    }

    fn inserted(&self) -> usize {
        self.inserted
    }

    fn byte_size(&self) -> usize {
        self.bits.len() * 8
    }

    fn expected_fpr(&self) -> f64 {
        // (1 - e^{-kn/m})^k
        let k = self.num_hashes as f64; // CAST-OK: estimate math; f64 rounding is acceptable here
        let n = self.inserted as f64; // CAST-OK: estimate math; f64 rounding is acceptable here
        let m = self.num_bits as f64; // CAST-OK: estimate math; f64 rounding is acceptable here
        (1.0 - (-k * n / m).exp()).powf(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_capacity(5000, 8);
        for i in 0..5000i64 {
            f.insert(i * 13);
        }
        for i in 0..5000i64 {
            assert!(f.maybe_contains(i * 13));
        }
        assert_eq!(f.inserted(), 5000);
    }

    #[test]
    fn fpr_decreases_with_more_bits() {
        let keys: Vec<i64> = (0..20_000).collect();
        let measure = |bits_per_key: usize| {
            let mut f = BloomFilter::with_capacity(keys.len(), bits_per_key);
            for &k in &keys {
                f.insert(k);
            }
            (1_000_000..1_050_000)
                .filter(|&k| f.maybe_contains(k))
                .count() as f64
                / 50_000.0
        };
        let fpr4 = measure(4);
        let fpr12 = measure(12);
        assert!(fpr12 < fpr4, "12 bits/key ({fpr12}) should beat 4 ({fpr4})");
        assert!(fpr12 < 0.01);
    }

    #[test]
    fn expected_fpr_tracks_observed() {
        let mut f = BloomFilter::with_capacity(10_000, 8);
        for i in 0..10_000i64 {
            f.insert(i);
        }
        let observed = (1_000_000..1_100_000)
            .filter(|&k| f.maybe_contains(k))
            .count() as f64
            / 100_000.0;
        let expected = f.expected_fpr();
        assert!(
            (observed - expected).abs() < 0.02,
            "observed {observed} vs expected {expected}"
        );
    }

    #[test]
    fn tiny_filter_does_not_panic() {
        let mut f = BloomFilter::with_capacity(0, 0);
        f.insert(5);
        assert!(f.maybe_contains(5));
        assert!(f.num_bits() >= 64);
        assert!(f.num_hashes() >= 1);
    }

    #[test]
    fn load_factor_reasonable() {
        let mut f = BloomFilter::with_capacity(1000, 8);
        for i in 0..1000 {
            f.insert(i);
        }
        let load = f.load_factor();
        // At optimal k the load is about 50%.
        assert!(load > 0.3 && load < 0.7, "load = {load}");
    }

    #[test]
    fn empty_filter_rejects_everything_probabilistically() {
        let f = BloomFilter::with_capacity(100, 8);
        assert!(!f.maybe_contains(1));
        assert!(!f.maybe_contains(42));
        assert_eq!(f.expected_fpr(), 0.0);
    }
}
