//! Hashing helpers shared by the filters and the hash-join executor.
//!
//! A small FxHash-style multiplicative hasher is implemented locally so the
//! hot join/probe paths do not pay SipHash's cost and no extra dependency is
//! required (see the Rust performance guidance on alternative hashers).

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style 64-bit hasher: fast multiplicative mixing, good enough for
/// integer keys, not HashDoS resistant (irrelevant for synthetic workloads).
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher64 {
    state: u64,
}

impl FxHasher64 {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.mix(v as u64); // CAST-OK: two's-complement bit reinterpret; hashing is bit-uniform
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64); // CAST-OK: usize widens losslessly into u64 on supported targets
    }
}

/// `BuildHasher` for `HashMap`/`HashSet` with [`FxHasher64`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher64>;

/// Hash map keyed by join keys using the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Hash set using the fast hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Hashes a single 64-bit key to a well-mixed 64-bit digest
/// (SplitMix64 finalizer).
#[inline]
pub fn hash_key(key: i64) -> u64 {
    let mut z = (key as u64).wrapping_add(0x9e3779b97f4a7c15); // CAST-OK: two's-complement bit reinterpret; hashing is bit-uniform
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Combines an accumulated hash with the next column's key, used to collapse
/// composite join keys into a single 64-bit value.
#[inline]
pub fn hash_pair(acc: u64, key: i64) -> u64 {
    // boost::hash_combine-style mixing on 64 bits.
    acc ^ (hash_key(key)
        .wrapping_add(0x9e3779b97f4a7c15)
        .wrapping_add(acc << 6)
        .wrapping_add(acc >> 2))
}

/// Collapses a composite key (one value per key column) into a single i64
/// suitable for filter insertion and hash-table lookup.
#[inline]
pub fn combine_key(parts: &[i64]) -> i64 {
    match parts {
        [single] => *single,
        _ => {
            let mut acc = 0u64;
            for &p in parts {
                acc = hash_pair(acc, p);
            }
            acc as i64 // CAST-OK: two's-complement reinterpret of a digest; keys are opaque bits here
        }
    }
}

/// Chunked composite-key hashing: folds one key column's parts into the
/// per-row accumulators, element-wise (`acc[i] = hash_pair(acc[i],
/// parts[i])`). Calling this once per key column over accumulators that
/// start at zero and then casting to `i64` reproduces [`combine_key`]'s
/// multi-part fold exactly, column-at-a-time instead of row-at-a-time.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn fold_parts(acc: &mut [u64], parts: &[i64]) {
    assert_eq!(
        acc.len(),
        parts.len(),
        "accumulator / parts length mismatch"
    );
    for (a, &p) in acc.iter_mut().zip(parts) {
        *a = hash_pair(*a, p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::hash::{BuildHasher, Hash};

    #[test]
    fn hash_key_is_deterministic_and_spreads() {
        assert_eq!(hash_key(42), hash_key(42));
        let distinct: HashSet<u64> = (0..10_000).map(hash_key).collect();
        assert_eq!(
            distinct.len(),
            10_000,
            "no collisions expected on small sets"
        );
    }

    #[test]
    fn hash_pair_depends_on_order() {
        assert_ne!(hash_pair(hash_key(1), 2), hash_pair(hash_key(2), 1));
    }

    #[test]
    fn combine_key_single_is_identity() {
        assert_eq!(combine_key(&[77]), 77);
    }

    #[test]
    fn combine_key_composite_distinguishes_permutations() {
        assert_ne!(combine_key(&[1, 2]), combine_key(&[2, 1]));
        assert_ne!(combine_key(&[1, 2]), combine_key(&[1, 3]));
        assert_eq!(combine_key(&[5, 9]), combine_key(&[5, 9]));
    }

    #[test]
    fn fold_parts_matches_combine_key() {
        let cols = [
            vec![1i64, -2, 3, i64::MAX],
            vec![9i64, 0, i64::MIN, -1],
            vec![7i64, 7, 7, 7],
        ];
        let mut acc = vec![0u64; 4];
        for col in &cols {
            fold_parts(&mut acc, col);
        }
        for i in 0..4 {
            assert_eq!(
                acc[i] as i64,
                combine_key(&[cols[0][i], cols[1][i], cols[2][i]])
            );
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn fold_parts_rejects_length_mismatch() {
        let mut acc = vec![0u64; 2];
        fold_parts(&mut acc, &[1]);
    }

    #[test]
    fn fx_hasher_usable_in_hashmap() {
        let mut m: FxHashMap<i64, usize> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i as usize);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&500], 500);
    }

    #[test]
    fn fx_hasher_handles_unaligned_bytes() {
        let bh = FxBuildHasher::default();
        let h1 = bh.hash_one("abc");
        let h2 = bh.hash_one("abd");
        assert_ne!(h1, h2);
        // Same value hashes the same.
        assert_eq!(bh.hash_one(12345u64), bh.hash_one(12345u64));
        let mut hasher = FxHasher64::default();
        "hello world, this is more than eight bytes".hash(&mut hasher);
        assert_ne!(hasher.finish(), 0);
    }
}
