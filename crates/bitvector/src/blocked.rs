//! Cache-line blocked Bloom filter.

use crate::hash::hash_key;
use crate::BitvectorFilter;

/// Bits per block: one 512-bit cache line.
const BLOCK_BITS: u64 = 512;
const BLOCK_WORDS: usize = (BLOCK_BITS / 64) as usize; // CAST-OK: constant 512 / 64 = 8

/// A blocked Bloom filter: every key touches a single 64-byte block, so a
/// probe costs at most one cache miss. This mirrors the
/// "performance-optimal" filters cited by the paper (\[24\] Lang et al.) and is
/// used as an ablation against the classic [`crate::BloomFilter`].
#[derive(Debug, Clone)]
pub struct BlockedBloomFilter {
    words: Vec<u64>,
    num_blocks: u64,
    hashes_per_key: u32,
    inserted: usize,
}

impl BlockedBloomFilter {
    /// Creates a filter sized for `expected_keys` at roughly `bits_per_key`
    /// bits per key, rounded up to a power-of-two number of blocks so the
    /// block index is a bit mask rather than a modulo.
    pub fn with_capacity(expected_keys: usize, bits_per_key: usize) -> Self {
        let bits_per_key = bits_per_key.max(1);
        let total_bits = ((expected_keys.max(1) * bits_per_key) as u64).max(BLOCK_BITS); // CAST-OK: usize widens losslessly into u64 on supported targets
        let num_blocks = total_bits.div_ceil(BLOCK_BITS).next_power_of_two();
        let hashes_per_key =
            ((bits_per_key as f64 * std::f64::consts::LN_2).round() as u32).clamp(1, 8); // CAST-OK: small positive count; rounded then clamped to 1..=8
        BlockedBloomFilter {
            words: vec![0u64; (num_blocks as usize) * BLOCK_WORDS], // CAST-OK: block count is bounded by the filter's in-memory size
            num_blocks,
            hashes_per_key,
            inserted: 0,
        }
    }

    #[inline]
    fn block_and_bits(&self, key: i64) -> (usize, [u16; 8]) {
        let h = hash_key(key);
        let block = (h & (self.num_blocks - 1)) as usize; // CAST-OK: masked to num_blocks - 1, which fits usize
                                                          // Derive up to 8 intra-block bit positions from the upper bits.
        let mut positions = [0u16; 8];
        let mut x = h.rotate_left(21) ^ h.wrapping_mul(0x9E3779B97F4A7C15);
        for p in positions.iter_mut() {
            *p = (x % BLOCK_BITS) as u16; // CAST-OK: value < BLOCK_BITS (512) after the modulo
            x = x.rotate_left(9).wrapping_mul(0xD1B54A32D192ED03);
        }
        (block, positions)
    }
}

impl BitvectorFilter for BlockedBloomFilter {
    fn insert(&mut self, key: i64) {
        let (block, positions) = self.block_and_bits(key);
        let base = block * BLOCK_WORDS;
        // CAST-OK: hashes_per_key is clamped to 1..=8 at construction
        for &pos in positions.iter().take(self.hashes_per_key as usize) {
            self.words[base + (pos / 64) as usize] |= 1u64 << (pos % 64); // CAST-OK: word index; bounded by the range/mask check
        }
        self.inserted += 1;
    }

    fn maybe_contains(&self, key: i64) -> bool {
        let (block, positions) = self.block_and_bits(key);
        let base = block * BLOCK_WORDS;
        positions
            .iter()
            .take(self.hashes_per_key as usize) // CAST-OK: hashes_per_key is clamped to 1..=8 at construction
            // CAST-OK: word index; bounded by the range/mask check
            .all(|&pos| self.words[base + (pos / 64) as usize] & (1u64 << (pos % 64)) != 0)
    }

    // Word-level probe over the cache-line blocked layout: every key still
    // touches exactly one block, but the hash-count load and word slice are
    // hoisted and the per-key early-exit loop is inlined. Bit-identical to
    // `maybe_contains` per key.
    fn probe_word(&self, keys: &[i64]) -> u64 {
        debug_assert!(keys.len() <= 64, "probe_word takes at most 64 keys");
        let hashes = self.hashes_per_key as usize; // CAST-OK: hashes_per_key is clamped to 1..=8 at construction
        let words = self.words.as_slice();
        let mut mask = 0u64;
        for (i, &k) in keys.iter().enumerate() {
            let (block, positions) = self.block_and_bits(k);
            let base = block * BLOCK_WORDS;
            let mut hit = true;
            for &pos in positions.iter().take(hashes) {
                // CAST-OK: word index; bounded by the range/mask check
                if words[base + (pos / 64) as usize] & (1u64 << (pos % 64)) == 0 {
                    hit = false;
                    break;
                }
            }
            mask |= u64::from(hit) << i;
        }
        mask
    }

    fn inserted(&self) -> usize {
        self.inserted
    }

    fn byte_size(&self) -> usize {
        self.words.len() * 8
    }

    fn expected_fpr(&self) -> f64 {
        // Approximate with the classic formula on the average block load;
        // blocked filters have a slightly higher true FPR due to block skew.
        let k = self.hashes_per_key as f64; // CAST-OK: estimate math; f64 rounding is acceptable here
        let n = self.inserted as f64; // CAST-OK: estimate math; f64 rounding is acceptable here
        let m = (self.num_blocks * BLOCK_BITS) as f64; // CAST-OK: estimate math; f64 rounding is acceptable here
        (1.0 - (-k * n / m).exp()).powf(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BlockedBloomFilter::with_capacity(10_000, 10);
        for i in 0..10_000i64 {
            f.insert(i * 31 + 7);
        }
        for i in 0..10_000i64 {
            assert!(f.maybe_contains(i * 31 + 7));
        }
    }

    #[test]
    fn bounded_false_positives() {
        let mut f = BlockedBloomFilter::with_capacity(20_000, 12);
        for i in 0..20_000i64 {
            f.insert(i);
        }
        let fp = (5_000_000..5_050_000)
            .filter(|&k| f.maybe_contains(k))
            .count() as f64
            / 50_000.0;
        assert!(fp < 0.05, "blocked bloom fpr {fp}");
    }

    #[test]
    fn single_block_filter_works() {
        let mut f = BlockedBloomFilter::with_capacity(1, 8);
        f.insert(99);
        assert!(f.maybe_contains(99));
        assert_eq!(f.byte_size(), 64);
    }

    #[test]
    fn expected_fpr_nonzero_after_inserts() {
        let mut f = BlockedBloomFilter::with_capacity(100, 8);
        assert_eq!(f.expected_fpr(), 0.0);
        for i in 0..100 {
            f.insert(i);
        }
        assert!(f.expected_fpr() > 0.0);
        assert!(f.expected_fpr() < 0.2);
    }
}
