//! Range bitmap filter.
//!
//! Decision-support schemas join on dense surrogate keys, and the classic
//! "bitvector filter" of the paper's title (bitmap / hash filter, \[18\]) is in
//! that case literally a bitmap indexed by key value: one shift and one AND
//! per probe, no hashing, no false positives. This is the cheapest possible
//! filter probe and the implementation the executor uses by default; the
//! Bloom variants remain available for the ablation experiments and for key
//! domains too sparse for a bitmap.

use crate::hash::FxHashSet;
use crate::BitvectorFilter;

/// How much larger than the number of inserted keys the key range may be
/// before a bitmap is considered too sparse and the filter falls back to a
/// hash set.
const MAX_RANGE_EXPANSION: i64 = 64;

/// A no-false-positive filter that uses a dense bitmap over the observed key
/// range when the keys are dense enough, and a hash set otherwise.
#[derive(Debug, Clone)]
pub enum RangeBitmapFilter {
    /// Dense representation: bit `key - min` is set for every inserted key.
    Bitmap {
        /// Smallest key the bitmap can represent (bit 0).
        min: i64,
        /// The bit words; bit `key - min` is set for inserted keys.
        words: Vec<u64>,
        /// Number of distinct keys inserted.
        inserted: usize,
    },
    /// Sparse fallback.
    Sparse(FxHashSet<i64>),
}

impl RangeBitmapFilter {
    /// Builds a filter from a slice of keys, choosing the dense or sparse
    /// representation based on the observed key range.
    pub fn from_keys(keys: &[i64]) -> Self {
        if keys.is_empty() {
            return RangeBitmapFilter::Bitmap {
                min: 0,
                words: Vec::new(),
                inserted: 0,
            };
        }
        let min = keys.iter().copied().min().unwrap();
        let max = keys.iter().copied().max().unwrap();
        let range = (max - min).saturating_add(1);
        let dense_enough = range <= (keys.len() as i64).saturating_mul(MAX_RANGE_EXPANSION) // CAST-OK: value bounded below 2^63
            && range <= i64::MAX - 64;
        if dense_enough {
            let num_words = (range as usize).div_ceil(64); // CAST-OK: range > 0 and bounded by the density check above
            let mut words = vec![0u64; num_words];
            for &k in keys {
                let offset = (k - min) as usize; // CAST-OK: k - min in [0, range) for keys that built this bitmap
                words[offset / 64] |= 1u64 << (offset % 64);
            }
            RangeBitmapFilter::Bitmap {
                min,
                words,
                inserted: keys.len(),
            }
        } else {
            let mut set = FxHashSet::with_capacity_and_hasher(keys.len(), Default::default());
            set.extend(keys.iter().copied());
            RangeBitmapFilter::Sparse(set)
        }
    }

    /// True when the dense bitmap representation is in use.
    pub fn is_dense(&self) -> bool {
        matches!(self, RangeBitmapFilter::Bitmap { .. })
    }
}

/// Branchless dense probe of up to 64 keys: out-of-range offsets are clamped
/// to 0 (so the word load stays in bounds without a data-dependent branch)
/// and the loaded bit is ANDed with the range check. `words` must be
/// non-empty for the clamp to be valid; the empty bitmap rejects everything.
#[inline]
fn dense_probe_word(min: i64, words: &[u64], keys: &[i64]) -> u64 {
    if words.is_empty() {
        return 0;
    }
    let limit = (words.len() * 64) as u64; // CAST-OK: usize widens losslessly into u64 on supported targets
    let mut mask = 0u64;
    for (i, &k) in keys.iter().enumerate() {
        let offset = k.wrapping_sub(min) as u64; // CAST-OK: two's-complement reinterpret; out-of-range keys fail the limit test
        let in_range = u64::from(offset < limit);
        let safe = if offset < limit { offset } else { 0 };
        let bit = (words[(safe / 64) as usize] >> (safe % 64)) & 1; // CAST-OK: word index; bounded by the range/mask check
        mask |= (bit & in_range) << i;
    }
    mask
}

impl BitvectorFilter for RangeBitmapFilter {
    fn insert(&mut self, key: i64) {
        match self {
            // Inserting outside the pre-sized range would require resizing;
            // incremental insertion therefore always goes to the sparse form.
            RangeBitmapFilter::Bitmap {
                min,
                words,
                inserted,
            } => {
                let offset = key - *min;
                // CAST-OK: offset checked non-negative on this line
                if offset >= 0 && (offset as usize) < words.len() * 64 {
                    words[offset as usize / 64] |= 1u64 << (offset as usize % 64); // CAST-OK: offset checked non-negative and in bounds above
                    *inserted += 1;
                } else {
                    // Degrade to the sparse representation, keeping the
                    // already-inserted keys.
                    let mut set = FxHashSet::default();
                    for (w, word) in words.iter().enumerate() {
                        let mut bits = *word;
                        while bits != 0 {
                            let b = bits.trailing_zeros() as i64; // CAST-OK: trailing_zeros() <= 64 fits i64
                            set.insert(*min + w as i64 * 64 + b); // CAST-OK: word index; words.len() * 64 fits i64 (range check at build)
                            bits &= bits - 1;
                        }
                    }
                    set.insert(key);
                    *self = RangeBitmapFilter::Sparse(set);
                }
            }
            RangeBitmapFilter::Sparse(set) => {
                set.insert(key);
            }
        }
    }

    #[inline]
    fn maybe_contains(&self, key: i64) -> bool {
        match self {
            RangeBitmapFilter::Bitmap { min, words, .. } => {
                let offset = key.wrapping_sub(*min);
                // CAST-OK: short-circuit: only evaluated when offset >= 0
                if offset < 0 || offset as usize >= words.len() * 64 {
                    return false;
                }
                let offset = offset as usize; // CAST-OK: offset checked non-negative and in bounds above
                words[offset / 64] & (1u64 << (offset % 64)) != 0
            }
            RangeBitmapFilter::Sparse(set) => set.contains(&key),
        }
    }

    // Word-level probe: the representation dispatch, `min` and the bit-count
    // limit are hoisted out of the per-key loop, and the dense inner loop is
    // branchless — a negative offset wraps to a huge unsigned value, so a
    // single unsigned compare performs both range checks (bit-identical to
    // the scalar probe above: `words.len() * 64 <= i64::MAX - 1 < 2^63`,
    // while any negative offset reinterprets to `>= 2^63`). Out-of-range
    // offsets are clamped to 0 before the word load and the loaded bit is
    // masked by the range check, so the loop has no data-dependent branch to
    // mispredict (the scalar probe's early return costs ~1 mispredict per
    // probe on mixed hit/miss streams).
    fn probe_word(&self, keys: &[i64]) -> u64 {
        debug_assert!(keys.len() <= 64, "probe_word takes at most 64 keys");
        match self {
            RangeBitmapFilter::Bitmap { min, words, .. } => dense_probe_word(*min, words, keys),
            RangeBitmapFilter::Sparse(set) => {
                let mut mask = 0u64;
                for (i, &k) in keys.iter().enumerate() {
                    mask |= u64::from(set.contains(&k)) << i;
                }
                mask
            }
        }
    }

    // Whole-slice override: one representation dispatch for the entire key
    // slice instead of one per 64-key chunk.
    fn probe_words(&self, keys: &[i64], out: &mut Vec<u64>) {
        out.clear();
        out.reserve(keys.len().div_ceil(64));
        match self {
            RangeBitmapFilter::Bitmap { min, words, .. } => {
                for chunk in keys.chunks(64) {
                    out.push(dense_probe_word(*min, words, chunk));
                }
            }
            RangeBitmapFilter::Sparse(set) => {
                for chunk in keys.chunks(64) {
                    let mut mask = 0u64;
                    for (i, &k) in chunk.iter().enumerate() {
                        mask |= u64::from(set.contains(&k)) << i;
                    }
                    out.push(mask);
                }
            }
        }
    }

    // Exact range-emptiness in both representations: the dense bitmap scans
    // the words overlapping the (clamped) offset window, the sparse set
    // iterates whichever of {stored keys, probe range} is smaller. Arithmetic
    // goes through i128 so extreme `[lo, hi]` bounds cannot overflow.
    fn probe_range_empty(&self, lo: i64, hi: i64) -> bool {
        if lo > hi {
            return true;
        }
        match self {
            RangeBitmapFilter::Bitmap { min, words, .. } => {
                let limit = (words.len() as i128) * 64; // CAST-OK: widening; i128 holds any value involved
                let lo_off = (i128::from(lo) - i128::from(*min)).max(0);
                let hi_off = (i128::from(hi) - i128::from(*min)).min(limit - 1);
                if lo_off > hi_off {
                    return true;
                }
                let (lo_off, hi_off) = (lo_off as usize, hi_off as usize); // CAST-OK: both clamped to [0, words.len() * 64) above
                let (lo_word, hi_word) = (lo_off / 64, hi_off / 64);
                for (w, &stored) in words.iter().enumerate().take(hi_word + 1).skip(lo_word) {
                    let mut word = stored;
                    if w == lo_word {
                        word &= u64::MAX << (lo_off % 64);
                    }
                    if w == hi_word && hi_off % 64 != 63 {
                        word &= (1u64 << (hi_off % 64 + 1)) - 1;
                    }
                    if word != 0 {
                        return false;
                    }
                }
                true
            }
            RangeBitmapFilter::Sparse(set) => {
                let width = i128::from(hi) - i128::from(lo) + 1;
                // CAST-OK: widening; i128 holds any value involved
                if width <= set.len() as i128 {
                    (lo..=hi).all(|k| !set.contains(&k))
                } else {
                    set.iter().all(|&k| k < lo || k > hi)
                }
            }
        }
    }

    fn inserted(&self) -> usize {
        match self {
            RangeBitmapFilter::Bitmap { inserted, .. } => *inserted,
            RangeBitmapFilter::Sparse(set) => set.len(),
        }
    }

    fn byte_size(&self) -> usize {
        match self {
            RangeBitmapFilter::Bitmap { words, .. } => words.len() * 8,
            RangeBitmapFilter::Sparse(set) => set.capacity() * 16,
        }
    }

    fn expected_fpr(&self) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_keys_use_bitmap() {
        let keys: Vec<i64> = (100..1100).collect();
        let f = RangeBitmapFilter::from_keys(&keys);
        assert!(f.is_dense());
        assert_eq!(f.inserted(), 1000);
        for k in 100..1100 {
            assert!(f.maybe_contains(k));
        }
        assert!(!f.maybe_contains(99));
        assert!(!f.maybe_contains(1100));
        assert!(!f.maybe_contains(-5));
        assert_eq!(f.expected_fpr(), 0.0);
    }

    #[test]
    fn sparse_keys_fall_back_to_hash_set() {
        let keys: Vec<i64> = (0..100).map(|i| i * 1_000_000_000).collect();
        let f = RangeBitmapFilter::from_keys(&keys);
        assert!(!f.is_dense());
        for &k in &keys {
            assert!(f.maybe_contains(k));
        }
        assert!(!f.maybe_contains(12345));
    }

    #[test]
    fn subset_of_dense_range_has_no_false_positives() {
        let keys: Vec<i64> = (0..1000).filter(|k| k % 3 == 0).collect();
        let f = RangeBitmapFilter::from_keys(&keys);
        assert!(f.is_dense());
        for k in 0..1000 {
            assert_eq!(f.maybe_contains(k), k % 3 == 0);
        }
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let f = RangeBitmapFilter::from_keys(&[]);
        assert!(!f.maybe_contains(0));
        assert_eq!(f.inserted(), 0);
        assert_eq!(f.byte_size(), 0);
    }

    #[test]
    fn incremental_insert_within_range() {
        let mut f = RangeBitmapFilter::from_keys(&[0, 99]);
        assert!(f.is_dense());
        f.insert(50);
        assert!(f.maybe_contains(50));
        assert!(f.is_dense());
    }

    #[test]
    fn incremental_insert_outside_range_degrades_gracefully() {
        let mut f = RangeBitmapFilter::from_keys(&[0, 1, 2, 3]);
        f.insert(1_000_000);
        assert!(!f.is_dense());
        for k in 0..4 {
            assert!(
                f.maybe_contains(k),
                "old key {k} must survive the downgrade"
            );
        }
        assert!(f.maybe_contains(1_000_000));
        assert!(!f.maybe_contains(17));
    }

    #[test]
    fn probe_range_empty_dense_matches_scalar_sweep() {
        let keys: Vec<i64> = (0..500).filter(|k| k % 7 == 0).collect();
        let f = RangeBitmapFilter::from_keys(&keys);
        assert!(f.is_dense());
        for lo in (-20..520).step_by(13) {
            for width in [0i64, 1, 5, 63, 64, 65, 200] {
                let hi = lo + width;
                let expected = (lo..=hi).all(|k| !f.maybe_contains(k));
                assert_eq!(f.probe_range_empty(lo, hi), expected, "[{lo},{hi}]");
            }
        }
        assert!(f.probe_range_empty(i64::MIN, -1));
        assert!(f.probe_range_empty(498, i64::MAX));
        assert!(!f.probe_range_empty(i64::MIN, i64::MAX));
    }

    #[test]
    fn probe_range_empty_sparse_matches_scalar_sweep() {
        let keys: Vec<i64> = (0..50).map(|i| i * 1_000_000_000).collect();
        let f = RangeBitmapFilter::from_keys(&keys);
        assert!(!f.is_dense());
        // Narrow range: iterates the range.
        assert!(f.probe_range_empty(1, 999_999_999));
        assert!(!f.probe_range_empty(999_999_999, 1_000_000_001));
        // Wide range: iterates the set.
        assert!(!f.probe_range_empty(i64::MIN, i64::MAX));
        assert!(f.probe_range_empty(49_000_000_001, i64::MAX));
        assert!(f.probe_range_empty(i64::MIN, -1));
    }

    #[test]
    fn negative_key_ranges_work() {
        let keys: Vec<i64> = (-500..-100).collect();
        let f = RangeBitmapFilter::from_keys(&keys);
        assert!(f.is_dense());
        assert!(f.maybe_contains(-300));
        assert!(!f.maybe_contains(0));
    }
}
