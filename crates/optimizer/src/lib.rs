//! Query optimizers for the BQO reproduction.
//!
//! Two optimizers are provided behind the [`Optimizer`] trait:
//!
//! * [`BaselineOptimizer`] — a conventional cost-based join-order optimizer
//!   (dynamic programming over connected subgraphs, greedy fallback for very
//!   large queries) that minimizes `Cout` **without** considering bitvector
//!   filters. Filters are added afterwards by Algorithm 1 exactly like the
//!   "post-processing" treatment the paper describes for the original
//!   Microsoft SQL Server.
//! * [`BqoOptimizer`] — the paper's contribution: construct the join order
//!   with the impact of bitvector filters taken into account, by evaluating a
//!   *linear* number of candidate right-deep plans (Sections 4–5) through
//!   Algorithm 2 (single fact table) and Algorithm 3 (arbitrary join graphs),
//!   then selecting bitvector filters cost-based (Section 6.3).
//!
//! The [`enumerate`] module provides the exhaustive right-deep enumeration
//! used by the tests and the Table 2 experiment to verify that the candidate
//! sets really contain a minimum-cost plan.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_debug_implementations)]

pub mod candidates;
pub mod costed_bv;
pub mod dp;
pub mod enumerate;
pub mod general;
pub mod snowflake;

use bqo_plan::{push_down_bitvectors, CostModel, JoinGraph, PhysicalPlan};

pub use candidates::{branch_candidates, candidate_plans, snowflake_candidates, star_candidates};
pub use costed_bv::prune_low_benefit_filters;
pub use dp::{DpOptimizer, GreedyOptimizer};
pub use enumerate::{count_right_deep_plans, enumerate_right_deep, exhaustive_best_right_deep};
pub use general::optimize_join_graph;
pub use snowflake::{optimize_snowflake, BranchGroup, BranchInfo};

/// A join-order optimizer: join graph in, physical plan (with bitvector
/// placements) out.
pub trait Optimizer {
    /// Human-readable name used in reports.
    fn name(&self) -> &'static str;

    /// Produces an executable physical plan for the query.
    fn optimize(&self, graph: &JoinGraph) -> PhysicalPlan;
}

/// The default λ threshold (Section 6.3): the minimum estimated eliminated
/// fraction a bitvector filter must achieve to be kept. The paper profiles
/// ~10% as the break-even and uses 5% in the implementation. Reports that
/// print the threshold (e.g. `OptimizerChoice::display_label`) read this
/// constant so they cannot drift from the optimizer's behaviour.
pub const DEFAULT_LAMBDA_THRESHOLD: f64 = 0.05;

/// Configuration of the bitvector-aware optimizer.
#[derive(Debug, Clone, Copy)]
pub struct BqoConfig {
    /// Minimum estimated eliminated fraction (λ) a bitvector filter must
    /// achieve to be kept (Section 6.3). The paper profiles ~10% as the
    /// break-even and uses 5% in the implementation.
    pub lambda_threshold: f64,
    /// Whether to apply the cost-based filter pruning at all.
    pub cost_based_filters: bool,
    /// Alternative-plan integration (Section 6.4): also evaluate the plan the
    /// conventional optimizer would have produced under the bitvector-aware
    /// cost, and keep whichever is cheaper. This is how the technique avoids
    /// regressions when the original plan is already good (e.g. bushy plans
    /// for queries with weakly filtered dimensions).
    pub alternative_plan: bool,
    /// Queries with more relations than this use the greedy fallback when
    /// producing the alternative plan.
    pub dp_relation_limit: usize,
}

impl Default for BqoConfig {
    fn default() -> Self {
        BqoConfig {
            lambda_threshold: DEFAULT_LAMBDA_THRESHOLD,
            cost_based_filters: true,
            alternative_plan: true,
            dp_relation_limit: 12,
        }
    }
}

/// The paper's bitvector-aware query optimizer.
#[derive(Debug, Clone, Copy, Default)]
pub struct BqoOptimizer {
    pub config: BqoConfig,
}

impl BqoOptimizer {
    /// Creates the optimizer with default configuration.
    pub fn new() -> Self {
        BqoOptimizer::default()
    }

    /// Creates the optimizer with an explicit λ threshold.
    pub fn with_threshold(lambda_threshold: f64) -> Self {
        BqoOptimizer {
            config: BqoConfig {
                lambda_threshold,
                ..Default::default()
            },
        }
    }
}

impl Optimizer for BqoOptimizer {
    fn name(&self) -> &'static str {
        "bqo"
    }

    fn optimize(&self, graph: &JoinGraph) -> PhysicalPlan {
        let cost_model = CostModel::new(graph);
        let mut tree = optimize_join_graph(graph, &cost_model);
        if self.config.alternative_plan && graph.num_relations() > 1 {
            // Section 6.4, alternative-plan integration: compare against the
            // conventional optimizer's plan under the bitvector-aware cost and
            // keep the cheaper of the two.
            let conventional = if graph.num_relations() <= self.config.dp_relation_limit {
                DpOptimizer::new().best_tree(graph, &cost_model)
            } else {
                GreedyOptimizer::new().best_tree(graph, &cost_model)
            };
            let bqo_cost = cost_model.cout_join_tree(&tree, true).total;
            let conventional_cost = cost_model.cout_join_tree(&conventional, true).total;
            if conventional_cost < bqo_cost {
                tree = conventional;
            }
        }
        let plan = PhysicalPlan::from_join_tree(graph, &tree);
        let mut plan = push_down_bitvectors(graph, plan);
        if self.config.cost_based_filters {
            prune_low_benefit_filters(&cost_model, &mut plan, self.config.lambda_threshold);
        }
        plan
    }
}

/// The conventional optimizer used as the paper's baseline ("Original").
#[derive(Debug, Clone, Copy)]
pub struct BaselineOptimizer {
    /// When true (the default, matching SQL Server), bitvector filters are
    /// added to the chosen plan as a post-processing step. When false the
    /// plan executes without any bitvector filters (the Table 4 ablation).
    pub add_bitvectors: bool,
    /// The baseline also selects filters heuristically (SQL Server does not
    /// attach a bitvector filter that is not expected to eliminate anything);
    /// filters below this estimated elimination fraction are dropped.
    pub filter_threshold: f64,
    /// Queries with more relations than this use the greedy fallback instead
    /// of exact dynamic programming.
    pub dp_relation_limit: usize,
}

impl Default for BaselineOptimizer {
    fn default() -> Self {
        BaselineOptimizer {
            add_bitvectors: true,
            filter_threshold: DEFAULT_LAMBDA_THRESHOLD,
            dp_relation_limit: 12,
        }
    }
}

impl BaselineOptimizer {
    /// Creates the baseline with default configuration.
    pub fn new() -> Self {
        BaselineOptimizer::default()
    }

    /// Baseline that never adds bitvector filters.
    pub fn without_bitvectors() -> Self {
        BaselineOptimizer {
            add_bitvectors: false,
            ..Default::default()
        }
    }
}

impl Optimizer for BaselineOptimizer {
    fn name(&self) -> &'static str {
        if self.add_bitvectors {
            "baseline+bv"
        } else {
            "baseline"
        }
    }

    fn optimize(&self, graph: &JoinGraph) -> PhysicalPlan {
        let cost_model = CostModel::new(graph);
        let tree = if graph.num_relations() <= self.dp_relation_limit {
            DpOptimizer::new().best_tree(graph, &cost_model)
        } else {
            GreedyOptimizer::new().best_tree(graph, &cost_model)
        };
        let plan = PhysicalPlan::from_join_tree(graph, &tree);
        if self.add_bitvectors {
            let mut plan = push_down_bitvectors(graph, plan);
            prune_low_benefit_filters(&cost_model, &mut plan, self.filter_threshold);
            plan
        } else {
            plan
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqo_plan::{JoinEdge, RelationInfo};

    fn star_graph() -> JoinGraph {
        let mut g = JoinGraph::new();
        let fact = g.add_relation(RelationInfo::new("fact", 1_000_000.0, 1_000_000.0));
        let d1 = g.add_relation(RelationInfo::new("d1", 100.0, 10.0));
        let d2 = g.add_relation(RelationInfo::new("d2", 1000.0, 1000.0));
        let d3 = g.add_relation(RelationInfo::new("d3", 50.0, 5.0));
        g.add_edge(JoinEdge::pkfk(fact, "d1_sk", d1, "sk", 100.0));
        g.add_edge(JoinEdge::pkfk(fact, "d2_sk", d2, "sk", 1000.0));
        g.add_edge(JoinEdge::pkfk(fact, "d3_sk", d3, "sk", 50.0));
        g
    }

    #[test]
    fn both_optimizers_produce_executable_plans() {
        let g = star_graph();
        for opt in [
            &BqoOptimizer::new() as &dyn Optimizer,
            &BaselineOptimizer::new(),
        ] {
            let plan = opt.optimize(&g);
            assert_eq!(plan.relation_set(plan.root()).len(), 4, "{}", opt.name());
            assert_eq!(plan.num_joins(), 3);
        }
    }

    #[test]
    fn bqo_cost_never_worse_than_postprocessed_baseline() {
        let g = star_graph();
        let model = CostModel::new(&g);
        let bqo_plan = BqoOptimizer::new().optimize(&g);
        let base_plan = BaselineOptimizer::new().optimize(&g);
        let bqo_cost = model.cout_physical(&bqo_plan).total;
        let base_cost = model.cout_physical(&base_plan).total;
        assert!(
            bqo_cost <= base_cost + 1e-6,
            "bqo {bqo_cost} vs baseline {base_cost}"
        );
    }

    #[test]
    fn baseline_without_bitvectors_has_no_placements() {
        let g = star_graph();
        let plan = BaselineOptimizer::without_bitvectors().optimize(&g);
        assert!(plan.placements.is_empty());
        let with = BaselineOptimizer::new().optimize(&g);
        assert!(!with.placements.is_empty());
    }

    #[test]
    fn cost_based_pruning_drops_useless_filters() {
        let g = star_graph();
        // d2 is unfiltered: its bitvector filter eliminates nothing, so the
        // cost-based configuration drops it while a zero-threshold
        // configuration keeps all three.
        let keep_all = BqoOptimizer::with_threshold(0.0).optimize(&g);
        let pruned = BqoOptimizer::new().optimize(&g);
        assert!(pruned.placements.len() < keep_all.placements.len());
        assert!(!pruned.placements.is_empty());
    }

    #[test]
    fn optimizer_names() {
        assert_eq!(BqoOptimizer::new().name(), "bqo");
        assert_eq!(BaselineOptimizer::new().name(), "baseline+bv");
        assert_eq!(BaselineOptimizer::without_bitvectors().name(), "baseline");
    }
}
