//! Cost-based bitvector filter selection (Section 6.3).
//!
//! Creating and probing a bitvector filter costs CPU. The paper derives the
//! break-even condition `λ > 1 − C_f / C_p` (a filter pays off once it
//! eliminates more than a threshold fraction of the probed tuples, measured
//! at roughly 10% in their micro-benchmark, with 5% chosen as the deployed
//! threshold). This module drops the placements whose estimated elimination
//! fraction falls below the configured threshold.

use bqo_plan::{CostModel, PhysicalPlan};

/// Removes bitvector placements whose estimated eliminated fraction λ is
/// below `lambda_threshold`. Returns the number of placements dropped.
pub fn prune_low_benefit_filters(
    cost_model: &CostModel<'_>,
    plan: &mut PhysicalPlan,
    lambda_threshold: f64,
) -> usize {
    if lambda_threshold <= 0.0 || plan.placements.is_empty() {
        return 0;
    }
    let keep: Vec<bool> = (0..plan.placements.len())
        .map(|idx| cost_model.estimated_elimination_fraction(plan, idx) >= lambda_threshold)
        .collect();
    let before = plan.placements.len();
    let mut idx = 0;
    plan.placements.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
    before - plan.placements.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqo_plan::{
        push_down_bitvectors, JoinEdge, JoinGraph, PhysicalPlan, RelationInfo, RightDeepTree,
    };

    /// Star where d0 is very selective, d1 is unfiltered and d2 is mildly
    /// selective.
    fn star() -> JoinGraph {
        let mut g = JoinGraph::new();
        let fact = g.add_relation(RelationInfo::new("fact", 1_000_000.0, 1_000_000.0));
        let d0 = g.add_relation(RelationInfo::new("d0", 1000.0, 10.0));
        let d1 = g.add_relation(RelationInfo::new("d1", 1000.0, 1000.0));
        let d2 = g.add_relation(RelationInfo::new("d2", 1000.0, 900.0));
        g.add_edge(JoinEdge::pkfk(fact, "d0_sk", d0, "sk", 1000.0));
        g.add_edge(JoinEdge::pkfk(fact, "d1_sk", d1, "sk", 1000.0));
        g.add_edge(JoinEdge::pkfk(fact, "d2_sk", d2, "sk", 1000.0));
        g
    }

    fn plan_for(g: &JoinGraph) -> PhysicalPlan {
        let order: Vec<_> = g.relation_ids().collect();
        let tree = RightDeepTree::new(order).to_join_tree();
        push_down_bitvectors(g, PhysicalPlan::from_join_tree(g, &tree))
    }

    #[test]
    fn zero_threshold_keeps_everything() {
        let g = star();
        let mut plan = plan_for(&g);
        let model = CostModel::new(&g);
        let dropped = prune_low_benefit_filters(&model, &mut plan, 0.0);
        assert_eq!(dropped, 0);
        assert_eq!(plan.placements.len(), 3);
    }

    #[test]
    fn default_threshold_drops_only_useless_filters() {
        let g = star();
        let mut plan = plan_for(&g);
        let model = CostModel::new(&g);
        let dropped = prune_low_benefit_filters(&model, &mut plan, 0.05);
        // The unfiltered dimension's filter (λ = 0) is dropped; the selective
        // one (λ = 0.99) and the mild one (λ = 0.1) stay.
        assert_eq!(dropped, 1);
        assert_eq!(plan.placements.len(), 2);
    }

    #[test]
    fn aggressive_threshold_drops_mild_filters_too() {
        let g = star();
        let mut plan = plan_for(&g);
        let model = CostModel::new(&g);
        let dropped = prune_low_benefit_filters(&model, &mut plan, 0.5);
        assert_eq!(dropped, 2);
        assert_eq!(plan.placements.len(), 1);
    }

    #[test]
    fn empty_plan_is_a_no_op() {
        let g = star();
        let mut plan = PhysicalPlan::from_join_tree(
            &g,
            &RightDeepTree::new(vec![g.relation_by_name("fact").unwrap()]).to_join_tree(),
        );
        let model = CostModel::new(&g);
        assert_eq!(prune_low_benefit_filters(&model, &mut plan, 0.05), 0);
    }
}
