//! Exhaustive enumeration of right-deep trees without cross products.
//!
//! This is the "original plan space" of Table 2: exponential in the number of
//! relations. It is used (a) by tests to verify that the linear candidate
//! sets of Theorems 4.1, 5.1 and 5.3 contain a minimum-cost plan, and (b) by
//! the Table 2 reproduction to count the plan-space sizes.

use bqo_plan::{CostModel, JoinGraph, RelId, RightDeepTree};
use std::collections::BTreeSet;

/// Enumerates every right-deep tree without cross products for the graph.
///
/// The number of such plans is exponential in the number of relations, so
/// callers should only use this for small queries (the tests use up to ~9
/// relations).
pub fn enumerate_right_deep(graph: &JoinGraph) -> Vec<RightDeepTree> {
    let all: Vec<RelId> = graph.relation_ids().collect();
    let mut plans = Vec::new();
    if all.is_empty() {
        return plans;
    }
    if all.len() == 1 {
        plans.push(RightDeepTree::new(all));
        return plans;
    }
    for &first in &all {
        let mut order = vec![first];
        let mut remaining: BTreeSet<RelId> = all.iter().copied().filter(|&r| r != first).collect();
        extend(graph, &mut order, &mut remaining, &mut plans);
    }
    plans
}

fn extend(
    graph: &JoinGraph,
    order: &mut Vec<RelId>,
    remaining: &mut BTreeSet<RelId>,
    plans: &mut Vec<RightDeepTree>,
) {
    if remaining.is_empty() {
        plans.push(RightDeepTree::new(order.clone()));
        return;
    }
    let prefix: BTreeSet<RelId> = order.iter().copied().collect();
    let candidates: Vec<RelId> = remaining
        .iter()
        .copied()
        .filter(|&r| graph.connects_to_set(r, &prefix))
        .collect();
    for rel in candidates {
        order.push(rel);
        remaining.remove(&rel);
        extend(graph, order, remaining, plans);
        remaining.insert(rel);
        order.pop();
    }
}

/// Counts the right-deep trees without cross products without materializing
/// them (still exponential time, but no allocation per plan).
pub fn count_right_deep_plans(graph: &JoinGraph) -> u64 {
    enumerate_right_deep(graph).len() as u64
}

/// Finds a minimum-cost right-deep tree by exhaustive enumeration, under the
/// bitvector-aware `Cout` (or the plain one when `with_bitvectors` is false).
/// Returns the best tree and its cost.
pub fn exhaustive_best_right_deep(
    graph: &JoinGraph,
    cost_model: &CostModel<'_>,
    with_bitvectors: bool,
) -> Option<(RightDeepTree, f64)> {
    let mut best: Option<(RightDeepTree, f64)> = None;
    for plan in enumerate_right_deep(graph) {
        let cost = cost_model.cout_right_deep_total(&plan, with_bitvectors);
        match &best {
            Some((_, c)) if *c <= cost => {}
            _ => best = Some((plan, cost)),
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqo_plan::{JoinEdge, RelationInfo};

    fn star(n_dims: usize) -> JoinGraph {
        let mut g = JoinGraph::new();
        let fact = g.add_relation(RelationInfo::new("fact", 1_000_000.0, 1_000_000.0));
        for i in 0..n_dims {
            let rows = 100.0 * (i as f64 + 1.0);
            let d = g.add_relation(RelationInfo::new(
                format!("d{i}"),
                rows,
                rows / (i as f64 + 2.0),
            ));
            g.add_edge(JoinEdge::pkfk(fact, format!("d{i}_sk"), d, "sk", rows));
        }
        g
    }

    fn chain(n: usize) -> JoinGraph {
        let mut g = JoinGraph::new();
        let mut prev = g.add_relation(RelationInfo::new("r0", 100_000.0, 100_000.0));
        for i in 1..n {
            let rows = (100_000.0 / 10f64.powi(i as i32)).max(10.0);
            let r = g.add_relation(RelationInfo::new(format!("r{i}"), rows, rows / 2.0));
            g.add_edge(JoinEdge::pkfk(prev, format!("r{i}_sk"), r, "sk", rows));
            prev = r;
        }
        g
    }

    /// Star with n dimensions: any permutation with the fact as right-most
    /// leaf (n! plans) plus, for each dimension as right-most leaf, the fact
    /// must come second and the rest is free ((n-1)! each): n! + n·(n-1)! =
    /// 2·n! plans.
    #[test]
    fn star_plan_count_is_exponential() {
        for n in 2..=5usize {
            let g = star(n);
            let expected = 2 * (1..=n as u64).product::<u64>();
            assert_eq!(count_right_deep_plans(&g), expected, "n = {n}");
        }
    }

    /// A chain of n relations has exactly n(n-1)/2 + 1 right-deep orders...
    /// actually the count for a path graph is 2^(n-1) (each step of the
    /// incremental construction extends the connected interval at one of its
    /// two ends, except the first pick which is free within the interval).
    #[test]
    fn chain_plan_count_matches_interval_argument() {
        // For a path of n vertices the number of connected-prefix
        // permutations ("right-deep orders without cross products") is
        // 2^(n-1): the prefix is always a contiguous interval containing the
        // first vertex, and each subsequent relation extends it left or right.
        // Summed over all possible first vertices this gives ... simply check
        // against brute force for small n computed independently.
        let expected: [u64; 4] = [2, 4, 8, 16]; // n = 2, 3, 4, 5
        for (i, n) in (2..=5usize).enumerate() {
            let g = chain(n);
            assert_eq!(count_right_deep_plans(&g), expected[i], "n = {n}");
        }
    }

    #[test]
    fn all_enumerated_plans_are_valid() {
        let g = star(4);
        let plans = enumerate_right_deep(&g);
        for p in &plans {
            assert!(p.has_no_cross_products(&g), "{p}");
            assert_eq!(p.len(), 5);
        }
        // No duplicates.
        let mut orders: Vec<Vec<RelId>> = plans.iter().map(|p| p.order().to_vec()).collect();
        orders.sort();
        orders.dedup();
        assert_eq!(orders.len(), plans.len());
    }

    #[test]
    fn exhaustive_best_finds_cheaper_plan_with_bitvectors() {
        let g = star(3);
        let model = CostModel::new(&g);
        let (_, best_bv) = exhaustive_best_right_deep(&g, &model, true).unwrap();
        let (_, best_plain) = exhaustive_best_right_deep(&g, &model, false).unwrap();
        assert!(best_bv <= best_plain);
    }

    #[test]
    fn single_relation_graph() {
        let mut g = JoinGraph::new();
        g.add_relation(RelationInfo::new("only", 10.0, 10.0));
        assert_eq!(count_right_deep_plans(&g), 1);
        let model = CostModel::new(&g);
        let (plan, cost) = exhaustive_best_right_deep(&g, &model, true).unwrap();
        assert_eq!(plan.len(), 1);
        assert!((cost - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_has_no_plans() {
        let g = JoinGraph::new();
        assert_eq!(count_right_deep_plans(&g), 0);
        let model = CostModel::new(&g);
        assert!(exhaustive_best_right_deep(&g, &model, true).is_none());
    }
}
