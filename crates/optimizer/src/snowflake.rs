//! Algorithm 2: bitvector-aware join-order construction for an arbitrary
//! snowflake query with a single fact table.
//!
//! The candidate plans of Section 5 assume a clean snowflake with PKFK joins.
//! Real decision-support queries deviate from that pattern (non-key joins
//! with the fact, dimension "branches" joining each other, dimensions larger
//! than the fact table), so Algorithm 2 assigns every branch to one of four
//! priority groups (P0–P3) and uses the resulting order to construct the
//! linear candidate set, evaluating each candidate under the bitvector-aware
//! `Cout`:
//!
//! * **P3** — branches larger than the fact table: joined first (highest
//!   priority) with the build/probe sides swapped, so the fact's filter can
//!   reduce them.
//! * **P2** — groups of branches that connect to the fact through more than
//!   one relation (or branch into trees): joined consecutively so their
//!   internal filters can flow.
//! * **P1** — ordinary smaller-than-fact branches whose filters reach the
//!   fact table.
//! * **P0** — branches without a PKFK join to the fact (e.g. other fact
//!   tables): joined last.
//!
//! Within a group, branches are ordered by how strongly they reduce the fact
//! table (most selective first).

use bqo_plan::{CostModel, JoinGraph, JoinTree, RelId};
use std::collections::BTreeSet;

/// The priority group a branch falls into (Section 6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BranchGroup {
    /// No PKFK join with the fact table.
    P0,
    /// Ordinary branch, smaller than the fact.
    P1,
    /// Connected to the fact through multiple relations (or branching trees).
    P2,
    /// Contains a relation larger than the fact table.
    P3,
}

/// One branch of the (generalized) snowflake around the fact table:
/// a connected component of the join graph with the fact removed.
#[derive(Debug, Clone)]
pub struct BranchInfo {
    /// Relations of the branch in a join order that never introduces a cross
    /// product when appended after the fact table (each relation joins an
    /// earlier one or the fact).
    pub members: Vec<RelId>,
    /// Which group the branch belongs to.
    pub group: BranchGroup,
    /// Estimated fraction of fact rows kept after semi-joining with this
    /// branch (smaller = more selective).
    pub fact_keep_fraction: f64,
    /// Relations of the branch that join the fact table directly.
    pub fact_neighbors: Vec<RelId>,
    /// True when the branch is a simple chain hanging off the fact.
    pub is_chain: bool,
}

impl BranchInfo {
    /// Sorting priority: higher joins closer to the fact (earlier in the
    /// probe pipeline). Mirrors the priorities assigned in `SortBranches`.
    fn priority(&self, num_relations: usize) -> usize {
        match self.group {
            BranchGroup::P0 => 0,
            BranchGroup::P1 => 1,
            BranchGroup::P2 => 1 + self.fact_neighbors.len().max(2),
            BranchGroup::P3 => num_relations + 1,
        }
    }
}

/// Analyzes the branches of `subset` around `fact`.
pub fn analyze_branches(
    graph: &JoinGraph,
    cost_model: &CostModel<'_>,
    subset: &BTreeSet<RelId>,
    fact: RelId,
) -> Vec<BranchInfo> {
    let est = cost_model.estimator();
    let fact_rows = est.base_card(fact);
    let mut branches = Vec::new();
    for component in graph.components_excluding(fact) {
        let members_in_subset: Vec<RelId> = component
            .iter()
            .copied()
            .filter(|r| subset.contains(r))
            .collect();
        if members_in_subset.is_empty() {
            continue;
        }
        let fact_neighbors: Vec<RelId> = members_in_subset
            .iter()
            .copied()
            .filter(|&r| graph.are_adjacent(r, fact))
            .collect();
        if fact_neighbors.is_empty() {
            // Not reachable from the fact inside this subset; skip (Algorithm
            // 3 will pick it up in a later snowflake).
            continue;
        }
        let ordered = connected_order(graph, &members_in_subset, &fact_neighbors);
        let set: BTreeSet<RelId> = ordered.iter().copied().collect();
        let keep = est.semijoin_keep_fraction(fact, &set);
        let has_pkfk_to_fact = fact_neighbors.iter().any(|&r| graph.points_to(fact, r));
        let larger_than_fact = ordered.iter().any(|&r| est.base_card(r) > fact_rows);
        let is_chain = is_chain_branch(graph, &ordered, fact);
        let group = if !has_pkfk_to_fact {
            BranchGroup::P0
        } else if larger_than_fact {
            BranchGroup::P3
        } else if fact_neighbors.len() > 1 || !is_chain {
            BranchGroup::P2
        } else {
            BranchGroup::P1
        };
        branches.push(BranchInfo {
            members: ordered,
            group,
            fact_keep_fraction: keep,
            fact_neighbors,
            is_chain,
        });
    }
    branches
}

/// Orders a branch's relations so that the first relation joins the fact and
/// every later relation joins an earlier one (a "partially ordered" prefix in
/// the paper's terminology).
fn connected_order(graph: &JoinGraph, members: &[RelId], fact_neighbors: &[RelId]) -> Vec<RelId> {
    let member_set: BTreeSet<RelId> = members.iter().copied().collect();
    let mut order = Vec::with_capacity(members.len());
    let mut placed: BTreeSet<RelId> = BTreeSet::new();
    let mut frontier: Vec<RelId> = fact_neighbors.to_vec();
    while let Some(next) = frontier.pop() {
        if !placed.insert(next) {
            continue;
        }
        order.push(next);
        for n in graph.neighbors(next) {
            if member_set.contains(&n) && !placed.contains(&n) {
                frontier.push(n);
            }
        }
    }
    // Any disconnected leftovers (cannot happen for true components) keep
    // their original order at the end.
    for &m in members {
        if !placed.contains(&m) {
            order.push(m);
        }
    }
    order
}

/// True when the branch is a chain: exactly one relation joins the fact, and
/// the branch's internal graph is a path starting there.
fn is_chain_branch(graph: &JoinGraph, ordered: &[RelId], fact: RelId) -> bool {
    let set: BTreeSet<RelId> = ordered.iter().copied().collect();
    let roots: Vec<RelId> = ordered
        .iter()
        .copied()
        .filter(|&r| graph.are_adjacent(r, fact))
        .collect();
    if roots.len() != 1 {
        return false;
    }
    for &r in ordered {
        let internal_degree = graph
            .neighbors(r)
            .into_iter()
            .filter(|n| set.contains(n))
            .count();
        let limit = if r == roots[0] || Some(&r) == ordered.last() {
            1
        } else {
            2
        };
        if internal_degree > limit {
            return false;
        }
    }
    true
}

/// Chain rotations of Theorem 5.3: for a chain branch ordered root-to-leaf
/// `[R_{i,1}, ..., R_{i,n_i}]`, the prefixes worth trying when the branch is
/// joined *before* the fact are, for each k, `R_{i,k}, R_{i,k+1}, ...,
/// R_{i,n_i}, R_{i,k-1}, ..., R_{i,1}`.
fn chain_rotations(members: &[RelId]) -> Vec<Vec<RelId>> {
    let n = members.len();
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let mut order: Vec<RelId> = Vec::with_capacity(n);
        order.extend_from_slice(&members[k..]);
        order.extend(members[..k].iter().rev());
        out.push(order);
    }
    out
}

/// Builds the plan that joins the branches (in the given order) on top of an
/// existing probe-side plan. Relations larger than the fact table are placed
/// on the probe side instead of the build side (the P3 swap of Algorithm 2,
/// line 12–13).
fn join_branches_onto(
    graph: &JoinGraph,
    cost_model: &CostModel<'_>,
    fact: RelId,
    branches: &[&BranchInfo],
    mut plan: JoinTree,
) -> JoinTree {
    let _ = graph;
    let est = cost_model.estimator();
    let fact_rows = est.base_card(fact);
    for branch in branches {
        for &table in &branch.members {
            if est.base_card(table) > fact_rows {
                // Larger than the fact: make it the probe side so the
                // accumulated plan (which contains the fact and its filters)
                // builds the hash table and creates the bitvector filter.
                plan = JoinTree::join(plan, JoinTree::Leaf(table));
            } else {
                plan = JoinTree::join(JoinTree::Leaf(table), plan);
            }
        }
    }
    plan
}

/// Algorithm 2: constructs a bitvector-aware join order for the relations in
/// `subset` (which must contain `fact` and be connected through it).
/// Returns the best candidate tree under bitvector-aware `Cout`.
pub fn optimize_snowflake(
    graph: &JoinGraph,
    cost_model: &CostModel<'_>,
    subset: &BTreeSet<RelId>,
    fact: RelId,
) -> JoinTree {
    assert!(subset.contains(&fact), "subset must contain the fact table");
    if subset.len() == 1 {
        return JoinTree::Leaf(fact);
    }
    let mut branches = analyze_branches(graph, cost_model, subset, fact);
    // Sort by priority (descending), then by selectivity on the fact
    // (most reductive first).
    let n = subset.len();
    branches.sort_by(|a, b| {
        b.priority(n)
            .cmp(&a.priority(n))
            .then(a.fact_keep_fraction.total_cmp(&b.fact_keep_fraction))
    });
    let branch_refs: Vec<&BranchInfo> = branches.iter().collect();

    // Candidate 1: fact table as the right-most leaf; all branches join onto
    // it in priority order.
    let mut best = join_branches_onto(graph, cost_model, fact, &branch_refs, JoinTree::Leaf(fact));
    let mut best_cost = cost_model.cout_join_tree(&best, true).total;

    // Candidates 2..: each branch in turn forms the bottom of the probe
    // pipeline (with its chain rotations), then the fact, then the remaining
    // branches in priority order.
    let est = cost_model.estimator();
    let fact_rows = est.base_card(fact);
    for (i, branch) in branches.iter().enumerate() {
        // A branch larger than the fact cannot profitably sit below the fact
        // on the probe side; Algorithm 2 handles it through the P3 swap above.
        if branch.members.iter().any(|&r| est.base_card(r) > fact_rows) {
            continue;
        }
        let prefixes = if branch.is_chain {
            chain_rotations(&branch.members)
        } else {
            vec![branch.members.clone()]
        };
        for prefix in prefixes {
            // Probe pipeline bottom: the branch prefix, joined right-deep.
            let mut plan = JoinTree::Leaf(prefix[0]);
            for &r in &prefix[1..] {
                plan = JoinTree::join(JoinTree::Leaf(r), plan);
            }
            // Then the fact table.
            plan = JoinTree::join(JoinTree::Leaf(fact), plan);
            // Then the remaining branches in priority order.
            let rest: Vec<&BranchInfo> = branches
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, b)| b)
                .collect();
            let plan = join_branches_onto(graph, cost_model, fact, &rest, plan);
            let cost = cost_model.cout_join_tree(&plan, true).total;
            if cost < best_cost {
                best_cost = cost;
                best = plan;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::exhaustive_best_right_deep;
    use bqo_plan::{JoinEdge, RelationInfo};

    fn full_set(graph: &JoinGraph) -> BTreeSet<RelId> {
        graph.relation_ids().collect()
    }

    /// Clean star with mixed selectivities.
    fn star() -> (JoinGraph, RelId) {
        let mut g = JoinGraph::new();
        let fact = g.add_relation(RelationInfo::new("fact", 1_000_000.0, 1_000_000.0));
        for (i, sel) in [0.01f64, 1.0, 0.3].into_iter().enumerate() {
            let rows = 1000.0;
            let d = g.add_relation(RelationInfo::new(format!("d{i}"), rows, rows * sel));
            g.add_edge(JoinEdge::pkfk(fact, format!("d{i}_sk"), d, "sk", rows));
        }
        (g, fact)
    }

    /// Snowflake with two chain branches.
    fn snowflake() -> (JoinGraph, RelId) {
        let mut g = JoinGraph::new();
        let fact = g.add_relation(RelationInfo::new("fact", 2_000_000.0, 2_000_000.0));
        let a1 = g.add_relation(RelationInfo::new("a1", 40_000.0, 40_000.0));
        let a2 = g.add_relation(RelationInfo::new("a2", 400.0, 20.0));
        let b1 = g.add_relation(RelationInfo::new("b1", 5000.0, 250.0));
        g.add_edge(JoinEdge::pkfk(fact, "a1_sk", a1, "sk", 40_000.0));
        g.add_edge(JoinEdge::pkfk(a1, "a2_sk", a2, "sk", 400.0));
        g.add_edge(JoinEdge::pkfk(fact, "b1_sk", b1, "sk", 5000.0));
        (g, fact)
    }

    /// Snowflake with a dimension branch larger than the fact (P3) and a
    /// non-PKFK neighbour (P0).
    fn irregular() -> (JoinGraph, RelId) {
        let mut g = JoinGraph::new();
        let fact = g.add_relation(RelationInfo::new("fact", 100_000.0, 100_000.0));
        let big = g.add_relation(RelationInfo::new("big_dim", 1_000_000.0, 900_000.0));
        let small = g.add_relation(RelationInfo::new("small_dim", 500.0, 25.0));
        let other_fact = g.add_relation(RelationInfo::new("other_fact", 300_000.0, 300_000.0));
        g.add_edge(JoinEdge::pkfk(fact, "big_sk", big, "sk", 1_000_000.0));
        g.add_edge(JoinEdge::pkfk(fact, "small_sk", small, "sk", 500.0));
        // Non-key join between the two facts.
        g.add_edge(JoinEdge::new(
            fact, other_fact, "k", "k", 10_000.0, 10_000.0, false, false,
        ));
        (g, fact)
    }

    #[test]
    fn star_branches_are_p1_chains() {
        let (g, fact) = star();
        let model = CostModel::new(&g);
        let branches = analyze_branches(&g, &model, &full_set(&g), fact);
        assert_eq!(branches.len(), 3);
        for b in &branches {
            assert_eq!(b.group, BranchGroup::P1);
            assert!(b.is_chain);
            assert_eq!(b.members.len(), 1);
        }
        // The selective dimension has the smallest keep fraction.
        let min = branches
            .iter()
            .min_by(|a, b| a.fact_keep_fraction.total_cmp(&b.fact_keep_fraction))
            .unwrap();
        assert_eq!(g.relation(min.members[0]).name, "d0");
    }

    #[test]
    fn irregular_branches_get_p0_and_p3() {
        let (g, fact) = irregular();
        let model = CostModel::new(&g);
        let branches = analyze_branches(&g, &model, &full_set(&g), fact);
        let group_of = |name: &str| {
            branches
                .iter()
                .find(|b| b.members.iter().any(|&r| g.relation(r).name == name))
                .map(|b| b.group)
                .unwrap()
        };
        assert_eq!(group_of("big_dim"), BranchGroup::P3);
        assert_eq!(group_of("small_dim"), BranchGroup::P1);
        assert_eq!(group_of("other_fact"), BranchGroup::P0);
    }

    #[test]
    fn star_result_matches_exhaustive_optimum() {
        let (g, fact) = star();
        let model = CostModel::new(&g);
        let tree = optimize_snowflake(&g, &model, &full_set(&g), fact);
        assert!(tree.has_no_cross_products(&g));
        let cost = model.cout_join_tree(&tree, true).total;
        let (_, best) = exhaustive_best_right_deep(&g, &model, true).unwrap();
        assert!(
            cost <= best * (1.0 + 1e-9) + 1e-6,
            "algorithm 2 found {cost}, exhaustive {best}"
        );
    }

    #[test]
    fn snowflake_result_matches_exhaustive_optimum() {
        let (g, fact) = snowflake();
        let model = CostModel::new(&g);
        let tree = optimize_snowflake(&g, &model, &full_set(&g), fact);
        assert!(tree.has_no_cross_products(&g));
        let cost = model.cout_join_tree(&tree, true).total;
        let (_, best) = exhaustive_best_right_deep(&g, &model, true).unwrap();
        assert!(cost <= best * (1.0 + 1e-9) + 1e-6);
    }

    #[test]
    fn irregular_graph_still_produces_valid_plan() {
        let (g, fact) = irregular();
        let model = CostModel::new(&g);
        let tree = optimize_snowflake(&g, &model, &full_set(&g), fact);
        assert_eq!(tree.relation_set().len(), 4);
        assert!(tree.has_no_cross_products(&g));
    }

    #[test]
    fn large_dimension_is_not_used_as_build_side() {
        let (g, fact) = irregular();
        let model = CostModel::new(&g);
        let tree = optimize_snowflake(&g, &model, &full_set(&g), fact);
        // Wherever the oversized dimension appears, it must be on the probe
        // side of its join.
        fn check(tree: &JoinTree, g: &JoinGraph) {
            if let JoinTree::Join { build, probe } = tree {
                if let JoinTree::Leaf(r) = **build {
                    assert_ne!(g.relation(r).name, "big_dim", "big_dim used as build side");
                }
                check(build, g);
                check(probe, g);
            }
        }
        check(&tree, &g);
    }

    #[test]
    fn single_relation_subset() {
        let (g, fact) = star();
        let model = CostModel::new(&g);
        let tree = optimize_snowflake(&g, &model, &[fact].into_iter().collect(), fact);
        assert_eq!(tree, JoinTree::Leaf(fact));
    }

    #[test]
    fn chain_rotations_cover_every_rightmost_choice() {
        let members = vec![RelId(1), RelId(2), RelId(3)];
        let rotations = chain_rotations(&members);
        assert_eq!(rotations.len(), 3);
        assert_eq!(rotations[0], vec![RelId(1), RelId(2), RelId(3)]);
        assert_eq!(rotations[1], vec![RelId(2), RelId(3), RelId(1)]);
        assert_eq!(rotations[2], vec![RelId(3), RelId(2), RelId(1)]);
    }
}
