//! Baseline join-order optimization: dynamic programming over connected
//! subgraphs (exact, exponential) and a greedy fallback for very large
//! queries.
//!
//! This models the paper's baseline ("the original Microsoft SQL Server"
//! without bitvector-aware join ordering): a cost-based optimizer that
//! minimizes plain `Cout` — the effect of bitvector filters is *not* part of
//! the cost — over bushy trees without cross products.

use bqo_plan::{CardinalityEstimator, CostModel, JoinGraph, JoinTree, RelId};
use std::collections::{BTreeSet, HashMap};

/// Exact dynamic-programming optimizer (DPsub over connected subsets).
#[derive(Debug, Clone, Copy, Default)]
pub struct DpOptimizer;

impl DpOptimizer {
    /// Creates the optimizer.
    pub fn new() -> Self {
        DpOptimizer
    }

    /// Finds a minimum-`Cout` bushy join tree without cross products. Cost is
    /// the plain (bitvector-unaware) `Cout`.
    ///
    /// # Panics
    /// Panics if the graph is empty or disconnected (a disconnected query
    /// would need cross products).
    pub fn best_tree(&self, graph: &JoinGraph, cost_model: &CostModel<'_>) -> JoinTree {
        let n = graph.num_relations();
        assert!(n > 0, "cannot optimize an empty join graph");
        assert!(
            graph.is_connected(),
            "disconnected join graphs require cross products, which are not supported"
        );
        assert!(
            n <= 20,
            "DP over {n} relations is infeasible; use GreedyOptimizer"
        );

        let est = cost_model.estimator();
        // best[mask] = (cost, tree). Cost is the full Cout of the subplan
        // (base cardinalities + intermediate join results).
        let mut best: HashMap<u32, (f64, JoinTree)> = HashMap::new();
        for r in graph.relation_ids() {
            best.insert(1u32 << r.index(), (est.base_card(r), JoinTree::Leaf(r)));
        }

        let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
        for mask in 1..=full {
            if mask.count_ones() < 2 {
                continue;
            }
            let set = mask_to_set(mask);
            if !graph.is_connected_subset(&set) {
                continue;
            }
            let output = est.join_card(&set);
            let mut best_here: Option<(f64, JoinTree)> = None;
            // Enumerate proper subsets of `mask` as the build side.
            let mut sub = (mask - 1) & mask;
            while sub > 0 {
                let other = mask & !sub;
                if sub < other {
                    // Each (sub, other) unordered pair is visited twice; both
                    // orders matter for hash joins (build vs probe), so keep
                    // both but avoid re-checking connectivity twice by letting
                    // the lookup below fail fast.
                }
                if let (Some((c1, t1)), Some((c2, t2))) = (best.get(&sub), best.get(&other)) {
                    let build_set = mask_to_set(sub);
                    let probe_set = mask_to_set(other);
                    if !graph.edges_across(&build_set, &probe_set).is_empty() {
                        let cost = c1 + c2 + output;
                        if best_here.as_ref().map(|(c, _)| cost < *c).unwrap_or(true) {
                            best_here = Some((cost, JoinTree::join(t1.clone(), t2.clone())));
                        }
                    }
                }
                sub = (sub - 1) & mask;
            }
            if let Some(entry) = best_here {
                best.insert(mask, entry);
            }
        }
        best.remove(&full)
            .expect("connected graph always has a cross-product-free plan")
            .1
    }
}

/// Greedy optimizer (GOO-style): repeatedly joins the pair of plan fragments
/// with the smallest estimated result, used for queries too large for DP
/// (the CUSTOMER-like workload reaches 80 joins).
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyOptimizer;

impl GreedyOptimizer {
    /// Creates the optimizer.
    pub fn new() -> Self {
        GreedyOptimizer
    }

    /// Builds a bushy tree by greedily merging the cheapest connected pair.
    pub fn best_tree(&self, graph: &JoinGraph, cost_model: &CostModel<'_>) -> JoinTree {
        let est: &CardinalityEstimator<'_> = cost_model.estimator();
        assert!(
            graph.num_relations() > 0,
            "cannot optimize an empty join graph"
        );
        let mut fragments: Vec<(BTreeSet<RelId>, JoinTree)> = graph
            .relation_ids()
            .map(|r| ([r].into_iter().collect(), JoinTree::Leaf(r)))
            .collect();
        while fragments.len() > 1 {
            let mut best_pair: Option<(usize, usize, f64)> = None;
            for i in 0..fragments.len() {
                for j in i + 1..fragments.len() {
                    if graph
                        .edges_across(&fragments[i].0, &fragments[j].0)
                        .is_empty()
                    {
                        continue;
                    }
                    let mut merged = fragments[i].0.clone();
                    merged.extend(fragments[j].0.iter().copied());
                    let card = est.join_card(&merged);
                    if best_pair.map(|(_, _, c)| card < c).unwrap_or(true) {
                        best_pair = Some((i, j, card));
                    }
                }
            }
            let (i, j, _) = best_pair
                .expect("disconnected join graphs require cross products, which are not supported");
            // Keep the smaller side as the hash-join build input.
            let (set_j, tree_j) = fragments.swap_remove(j);
            let (set_i, tree_i) = fragments.swap_remove(i.min(fragments.len()));
            let (build, probe, build_set, probe_set) =
                if est.join_card(&set_i) <= est.join_card(&set_j) {
                    (tree_i, tree_j, set_i, set_j)
                } else {
                    (tree_j, tree_i, set_j, set_i)
                };
            let mut merged = build_set;
            merged.extend(probe_set);
            fragments.push((merged, JoinTree::join(build, probe)));
        }
        fragments.pop().unwrap().1
    }
}

fn mask_to_set(mask: u32) -> BTreeSet<RelId> {
    (0..32)
        .filter(|i| mask & (1 << i) != 0)
        .map(|i| RelId(i as usize))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::exhaustive_best_right_deep;
    use bqo_plan::{JoinEdge, RelationInfo};

    fn star(filters: &[f64]) -> JoinGraph {
        let mut g = JoinGraph::new();
        let fact = g.add_relation(RelationInfo::new("fact", 1_000_000.0, 1_000_000.0));
        for (i, &sel) in filters.iter().enumerate() {
            let rows = 1000.0;
            let d = g.add_relation(RelationInfo::new(format!("d{i}"), rows, rows * sel));
            g.add_edge(JoinEdge::pkfk(fact, format!("d{i}_sk"), d, "sk", rows));
        }
        g
    }

    fn chain(n: usize) -> JoinGraph {
        let mut g = JoinGraph::new();
        let mut prev = g.add_relation(RelationInfo::new("r0", 200_000.0, 200_000.0));
        for i in 1..n {
            let rows = (200_000.0 / 6f64.powi(i as i32)).max(10.0);
            let r = g.add_relation(RelationInfo::new(format!("r{i}"), rows, rows / 3.0));
            g.add_edge(JoinEdge::pkfk(prev, format!("r{i}_sk"), r, "sk", rows));
            prev = r;
        }
        g
    }

    #[test]
    fn dp_plan_covers_all_relations_without_cross_products() {
        let g = star(&[0.1, 0.5, 1.0, 0.01]);
        let model = CostModel::new(&g);
        let tree = DpOptimizer::new().best_tree(&g, &model);
        assert_eq!(tree.relation_set().len(), 5);
        assert!(tree.has_no_cross_products(&g));
    }

    #[test]
    fn dp_is_at_least_as_good_as_exhaustive_right_deep_without_bitvectors() {
        // The DP searches bushy trees, a superset of right-deep trees, so its
        // plain-Cout optimum can only be better or equal.
        for g in [star(&[0.2, 0.7, 0.05]), chain(5)] {
            let model = CostModel::new(&g);
            let dp_tree = DpOptimizer::new().best_tree(&g, &model);
            let dp_cost = model.cout_join_tree(&dp_tree, false).total;
            let (_, rd_cost) = exhaustive_best_right_deep(&g, &model, false).unwrap();
            assert!(dp_cost <= rd_cost + 1e-6, "dp {dp_cost} vs rd {rd_cost}");
        }
    }

    #[test]
    fn greedy_plan_is_valid_and_close_to_dp_on_small_graphs() {
        let g = star(&[0.1, 0.5, 1.0, 0.01, 0.3]);
        let model = CostModel::new(&g);
        let greedy = GreedyOptimizer::new().best_tree(&g, &model);
        assert_eq!(greedy.relation_set().len(), 6);
        assert!(greedy.has_no_cross_products(&g));
        let dp = DpOptimizer::new().best_tree(&g, &model);
        let greedy_cost = model.cout_join_tree(&greedy, false).total;
        let dp_cost = model.cout_join_tree(&dp, false).total;
        assert!(greedy_cost >= dp_cost - 1e-6);
        assert!(
            greedy_cost <= dp_cost * 3.0,
            "greedy should be within 3x of optimal on a star: {greedy_cost} vs {dp_cost}"
        );
    }

    #[test]
    fn greedy_handles_large_chain() {
        let g = chain(30);
        let model = CostModel::new(&g);
        let tree = GreedyOptimizer::new().best_tree(&g, &model);
        assert_eq!(tree.relation_set().len(), 30);
        assert!(tree.has_no_cross_products(&g));
    }

    #[test]
    fn single_relation_graphs() {
        let mut g = JoinGraph::new();
        g.add_relation(RelationInfo::new("only", 42.0, 42.0));
        let model = CostModel::new(&g);
        assert_eq!(
            DpOptimizer::new().best_tree(&g, &model),
            JoinTree::Leaf(RelId(0))
        );
        assert_eq!(
            GreedyOptimizer::new().best_tree(&g, &model),
            JoinTree::Leaf(RelId(0))
        );
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn dp_rejects_disconnected_graphs() {
        let mut g = JoinGraph::new();
        g.add_relation(RelationInfo::new("a", 10.0, 10.0));
        g.add_relation(RelationInfo::new("b", 10.0, 10.0));
        let model = CostModel::new(&g);
        DpOptimizer::new().best_tree(&g, &model);
    }

    #[test]
    fn two_relation_join_builds_from_smaller_side_in_greedy() {
        let mut g = JoinGraph::new();
        let big = g.add_relation(RelationInfo::new("big", 100_000.0, 100_000.0));
        let small = g.add_relation(RelationInfo::new("small", 100.0, 10.0));
        g.add_edge(JoinEdge::pkfk(big, "s_sk", small, "sk", 100.0));
        let model = CostModel::new(&g);
        let tree = GreedyOptimizer::new().best_tree(&g, &model);
        match tree {
            JoinTree::Join { build, .. } => assert_eq!(*build, JoinTree::Leaf(small)),
            _ => panic!("expected a join"),
        }
    }
}
