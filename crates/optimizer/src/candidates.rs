//! Linear candidate plan sets for star, snowflake and branch queries
//! (Theorems 4.1/4.2, 5.1/5.2 and 5.3/5.4).
//!
//! For a query with `n + 1` relations, the paper proves that a minimum-cost
//! right-deep tree (under bitvector-aware `Cout` with no false positives) can
//! be found among `n + 1` candidates:
//!
//! * **Star** (fact `R0`, dimensions `R1..Rn`):
//!   `T(R0, R1, ..., Rn)` plus, for every `k`,
//!   `T(Rk, R0, R1, ..., R_{k-1}, R_{k+1}, ..., Rn)`.
//! * **Branch / chain** (`R0 -> R1 -> ... -> Rn`):
//!   `T(Rn, R_{n-1}, ..., R0)` plus, for every `k < n`,
//!   `T(Rk, R_{k+1}, ..., Rn, R_{k-1}, ..., R0)`.
//! * **Snowflake** (fact `R0`, branches `B_1..B_m`): the fact-first plan plus,
//!   for every branch `i` and every choice of right-most leaf inside that
//!   branch, the plan that joins the (rotated) branch first, then the fact,
//!   then the remaining branches.

use bqo_plan::{GraphShape, JoinGraph, RelId, RightDeepTree};

/// Candidate plans for a star query (Theorem 4.1). `fact` is `R0`,
/// `dimensions` are `R1..Rn` in any fixed order.
pub fn star_candidates(fact: RelId, dimensions: &[RelId]) -> Vec<RightDeepTree> {
    let mut plans = Vec::with_capacity(dimensions.len() + 1);
    let mut fact_first = vec![fact];
    fact_first.extend_from_slice(dimensions);
    plans.push(RightDeepTree::new(fact_first));
    for (k, &dim) in dimensions.iter().enumerate() {
        let mut order = vec![dim, fact];
        order.extend(
            dimensions
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != k)
                .map(|(_, &d)| d),
        );
        plans.push(RightDeepTree::new(order));
    }
    plans
}

/// Candidate plans for a branch/chain query (Theorem 5.3). `order_from_r0`
/// lists the chain from `R0` (the fact-most end) to `Rn` (the outer end).
pub fn branch_candidates(order_from_r0: &[RelId]) -> Vec<RightDeepTree> {
    let n = order_from_r0.len();
    let mut plans = Vec::with_capacity(n);
    if n == 0 {
        return plans;
    }
    // T(Rn, R_{n-1}, ..., R0)
    let mut reversed: Vec<RelId> = order_from_r0.to_vec();
    reversed.reverse();
    plans.push(RightDeepTree::new(reversed));
    // T(Rk, R_{k+1}, ..., Rn, R_{k-1}, ..., R0) for k = 0..n-1
    for k in 0..n - 1 {
        let mut order: Vec<RelId> = Vec::with_capacity(n);
        order.extend_from_slice(&order_from_r0[k..]); // Rk, R_{k+1}, ..., Rn
        order.extend(order_from_r0[..k].iter().rev()); // R_{k-1}, ..., R0
        plans.push(RightDeepTree::new(order));
    }
    plans
}

/// Candidate plans for a snowflake query (Theorem 5.1). `fact` is `R0`;
/// each branch is ordered from the relation adjacent to the fact (`R_{i,1}`)
/// outwards (`R_{i,n_i}`).
pub fn snowflake_candidates(fact: RelId, branches: &[Vec<RelId>]) -> Vec<RightDeepTree> {
    let mut plans = Vec::new();

    // Fact-first plan: T(R0, branch_1 ..., branch_2 ..., ...). Within a
    // branch the relations must appear root-to-leaf so the order is partially
    // ordered (Definition 3) and has no cross products.
    let mut fact_first = vec![fact];
    for branch in branches {
        fact_first.extend_from_slice(branch);
    }
    plans.push(RightDeepTree::new(fact_first));

    // Branch-first plans: for branch i and right-most leaf R_{i,k}, the
    // branch is joined as (R_{i,k}, R_{i,k+1}, ..., R_{i,n_i}, R_{i,k-1}, ...,
    // R_{i,1}), then the fact, then the remaining branches root-to-leaf.
    for (i, branch) in branches.iter().enumerate() {
        for k in 0..branch.len() {
            let mut order: Vec<RelId> = Vec::new();
            order.extend_from_slice(&branch[k..]);
            order.extend(branch[..k].iter().rev());
            order.push(fact);
            for (j, other) in branches.iter().enumerate() {
                if j != i {
                    order.extend_from_slice(other);
                }
            }
            plans.push(RightDeepTree::new(order));
        }
    }
    plans
}

/// Candidate plans chosen by the classified shape of the graph. Returns
/// `None` for general graphs (Algorithm 2/3 handle those instead).
pub fn candidate_plans(graph: &JoinGraph) -> Option<Vec<RightDeepTree>> {
    match graph.classify() {
        GraphShape::Star { fact, dimensions } => Some(star_candidates(fact, &dimensions)),
        GraphShape::Snowflake { fact, branches } => Some(snowflake_candidates(fact, &branches)),
        GraphShape::Branch { order } => Some(branch_candidates(&order)),
        GraphShape::General => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enumerate_right_deep, exhaustive_best_right_deep};
    use bqo_plan::{CostModel, JoinEdge, RelationInfo};

    fn star_graph(filters: &[f64]) -> JoinGraph {
        let mut g = JoinGraph::new();
        let fact = g.add_relation(RelationInfo::new("fact", 1_000_000.0, 1_000_000.0));
        for (i, &sel) in filters.iter().enumerate() {
            let rows = 1000.0;
            let d = g.add_relation(RelationInfo::new(format!("d{i}"), rows, rows * sel));
            g.add_edge(JoinEdge::pkfk(fact, format!("d{i}_sk"), d, "sk", rows));
        }
        g
    }

    fn snowflake_graph() -> JoinGraph {
        // fact -> a1 -> a2, fact -> b1, fact -> c1 -> c2 -> c3
        let mut g = JoinGraph::new();
        let fact = g.add_relation(RelationInfo::new("fact", 2_000_000.0, 2_000_000.0));
        let a1 = g.add_relation(RelationInfo::new("a1", 50_000.0, 50_000.0));
        let a2 = g.add_relation(RelationInfo::new("a2", 500.0, 50.0));
        let b1 = g.add_relation(RelationInfo::new("b1", 2000.0, 100.0));
        let c1 = g.add_relation(RelationInfo::new("c1", 100_000.0, 100_000.0));
        let c2 = g.add_relation(RelationInfo::new("c2", 1000.0, 1000.0));
        let c3 = g.add_relation(RelationInfo::new("c3", 20.0, 2.0));
        g.add_edge(JoinEdge::pkfk(fact, "a1_sk", a1, "sk", 50_000.0));
        g.add_edge(JoinEdge::pkfk(a1, "a2_sk", a2, "sk", 500.0));
        g.add_edge(JoinEdge::pkfk(fact, "b1_sk", b1, "sk", 2000.0));
        g.add_edge(JoinEdge::pkfk(fact, "c1_sk", c1, "sk", 100_000.0));
        g.add_edge(JoinEdge::pkfk(c1, "c2_sk", c2, "sk", 1000.0));
        g.add_edge(JoinEdge::pkfk(c2, "c3_sk", c3, "sk", 20.0));
        g
    }

    fn chain_graph(n: usize) -> JoinGraph {
        let mut g = JoinGraph::new();
        let mut prev = g.add_relation(RelationInfo::new("r0", 500_000.0, 500_000.0));
        for i in 1..n {
            let rows = (500_000.0 / 8f64.powi(i as i32)).max(20.0);
            let filtered = if i % 2 == 0 { rows / 5.0 } else { rows };
            let r = g.add_relation(RelationInfo::new(format!("r{i}"), rows, filtered));
            g.add_edge(JoinEdge::pkfk(prev, format!("r{i}_sk"), r, "sk", rows));
            prev = r;
        }
        g
    }

    #[test]
    fn star_candidate_count_is_linear() {
        let g = star_graph(&[0.1, 1.0, 0.5, 0.01]);
        let candidates = candidate_plans(&g).unwrap();
        // n + 1 = 5 candidates for 5 relations.
        assert_eq!(candidates.len(), 5);
        for c in &candidates {
            assert!(c.has_no_cross_products(&g));
        }
    }

    #[test]
    fn star_candidates_contain_exhaustive_minimum() {
        // Theorem 4.1: the candidate set contains a minimum-cost plan.
        for filters in [
            vec![0.1, 1.0, 0.5],
            vec![0.001, 0.9, 0.3, 0.7],
            vec![1.0, 1.0, 1.0],
            vec![0.01, 0.02, 0.5, 0.9, 0.04],
        ] {
            let g = star_graph(&filters);
            let model = CostModel::new(&g);
            let (_, best) = exhaustive_best_right_deep(&g, &model, true).unwrap();
            let candidate_best = candidate_plans(&g)
                .unwrap()
                .iter()
                .map(|p| model.cout_right_deep_total(p, true))
                .fold(f64::INFINITY, f64::min);
            assert!(
                candidate_best <= best + best.abs() * 1e-9 + 1e-6,
                "candidates miss the optimum: {candidate_best} vs {best} ({filters:?})"
            );
        }
    }

    #[test]
    fn branch_candidate_count_is_linear() {
        let g = chain_graph(5);
        let candidates = candidate_plans(&g).unwrap();
        assert_eq!(candidates.len(), 5);
        for c in &candidates {
            assert!(c.has_no_cross_products(&g), "{c}");
        }
    }

    #[test]
    fn branch_candidates_contain_exhaustive_minimum() {
        for n in [3usize, 4, 5, 6] {
            let g = chain_graph(n);
            let model = CostModel::new(&g);
            let (_, best) = exhaustive_best_right_deep(&g, &model, true).unwrap();
            let candidate_best = candidate_plans(&g)
                .unwrap()
                .iter()
                .map(|p| model.cout_right_deep_total(p, true))
                .fold(f64::INFINITY, f64::min);
            assert!(
                candidate_best <= best + best.abs() * 1e-9 + 1e-6,
                "n={n}: {candidate_best} vs {best}"
            );
        }
    }

    #[test]
    fn snowflake_candidate_count_is_linear() {
        let g = snowflake_graph();
        let candidates = candidate_plans(&g).unwrap();
        // n + 1 = 7 relations -> 7 candidates (1 fact-first + 2 + 1 + 3).
        assert_eq!(candidates.len(), 7);
        for c in &candidates {
            assert!(c.has_no_cross_products(&g), "{c}");
            assert_eq!(c.len(), 7);
        }
    }

    #[test]
    fn snowflake_candidates_contain_exhaustive_minimum() {
        let g = snowflake_graph();
        let model = CostModel::new(&g);
        let (_, best) = exhaustive_best_right_deep(&g, &model, true).unwrap();
        let candidate_best = candidate_plans(&g)
            .unwrap()
            .iter()
            .map(|p| model.cout_right_deep_total(p, true))
            .fold(f64::INFINITY, f64::min);
        assert!(
            candidate_best <= best + best.abs() * 1e-9 + 1e-6,
            "{candidate_best} vs {best}"
        );
    }

    #[test]
    fn candidate_sets_are_subsets_of_the_valid_plan_space() {
        let g = snowflake_graph();
        let all: Vec<Vec<RelId>> = enumerate_right_deep(&g)
            .iter()
            .map(|p| p.order().to_vec())
            .collect();
        for c in candidate_plans(&g).unwrap() {
            assert!(all.contains(&c.order().to_vec()), "{c} not in plan space");
        }
    }

    #[test]
    fn general_graph_has_no_candidate_shortcut() {
        // Two fact tables sharing a dimension: classified General.
        let mut g = JoinGraph::new();
        let f1 = g.add_relation(RelationInfo::new("f1", 1_000_000.0, 1_000_000.0));
        let f2 = g.add_relation(RelationInfo::new("f2", 500_000.0, 500_000.0));
        let d = g.add_relation(RelationInfo::new("d", 100.0, 100.0));
        g.add_edge(JoinEdge::pkfk(f1, "d_sk", d, "sk", 100.0));
        g.add_edge(JoinEdge::pkfk(f2, "d_sk", d, "sk", 100.0));
        assert!(candidate_plans(&g).is_none());
    }

    #[test]
    fn branch_candidates_for_tiny_inputs() {
        assert!(branch_candidates(&[]).is_empty());
        let single = branch_candidates(&[RelId(0)]);
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].order(), &[RelId(0)]);
        let pair = branch_candidates(&[RelId(0), RelId(1)]);
        assert_eq!(pair.len(), 2);
    }
}
