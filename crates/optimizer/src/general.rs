//! Algorithm 3: bitvector-aware join ordering for arbitrary decision support
//! queries (multiple fact tables, arbitrary join graphs).
//!
//! The algorithm alternates two stages until the whole join graph is covered:
//!
//! 1. **Snowflake extraction** — among the not-yet-optimized fact tables pick
//!    the one with the smallest cardinality and expand it into a snowflake:
//!    the fact plus every dimension (and dimension-of-dimension) reachable
//!    through PKFK edges pointing away from it that has not been claimed by a
//!    previously extracted snowflake.
//! 2. **Snowflake optimization** — run Algorithm 2 on the extracted subgraph.
//!
//! The optimized snowflakes are then stitched together into one plan: the
//! snowflake of the smallest fact forms the probe pipeline bottom and each
//! subsequent snowflake (in extraction order) joins onto it, preserving the
//! right-deep-flavoured shape the paper's plan space favours.

use crate::snowflake::optimize_snowflake;
use bqo_plan::{CostModel, JoinGraph, JoinTree, RelId};
use std::collections::BTreeSet;

/// Produces a bitvector-aware join tree for an arbitrary join graph.
pub fn optimize_join_graph(graph: &JoinGraph, cost_model: &CostModel<'_>) -> JoinTree {
    assert!(
        graph.num_relations() > 0,
        "cannot optimize an empty join graph"
    );
    if graph.num_relations() == 1 {
        return JoinTree::Leaf(RelId(0));
    }

    let est = cost_model.estimator();
    let mut facts = graph.fact_tables();
    if facts.is_empty() {
        // Degenerate graphs (e.g. every relation is joined on its key by
        // someone): treat the largest relation as the fact.
        let largest = graph
            .relation_ids()
            .max_by(|a, b| est.base_card(*a).total_cmp(&est.base_card(*b)))
            .expect("non-empty graph");
        facts.push(largest);
    }
    // Smallest fact first (ExtractSnowflake, line 9).
    facts.sort_by(|a, b| est.base_card(*a).total_cmp(&est.base_card(*b)));

    // Assign every relation to the snowflake of exactly one fact.
    let mut claimed: BTreeSet<RelId> = facts.iter().copied().collect();
    let mut snowflakes: Vec<(RelId, BTreeSet<RelId>)> = Vec::new();
    for &fact in &facts {
        let members = expand_snowflake(graph, fact, &claimed);
        claimed.extend(members.iter().copied());
        snowflakes.push((fact, members));
    }
    // Relations still unclaimed (not reachable through PKFK edges from any
    // fact, e.g. a detached dimension joined on a non-key column): attach
    // each to the first snowflake it is adjacent to.
    let unclaimed: Vec<RelId> = graph
        .relation_ids()
        .filter(|r| !claimed.contains(r))
        .collect();
    for rel in unclaimed {
        let target = snowflakes
            .iter_mut()
            .find(|(_, members)| graph.neighbors(rel).iter().any(|n| members.contains(n)))
            .map(|(_, members)| members);
        if let Some(members) = target {
            members.insert(rel);
        } else if let Some((_, members)) = snowflakes.first_mut() {
            members.insert(rel);
        }
    }

    // Optimize each snowflake with Algorithm 2.
    let mut optimized: Vec<(BTreeSet<RelId>, JoinTree)> = snowflakes
        .iter()
        .map(|(fact, members)| {
            (
                members.clone(),
                optimize_snowflake(graph, cost_model, members, *fact),
            )
        })
        .collect();

    // Stitch the snowflake subplans together. Start from the first snowflake
    // and repeatedly attach a subplan that shares a join edge with what has
    // been assembled so far (there is always one while the graph is
    // connected). The already-assembled part stays on the probe side so its
    // filters keep flowing downwards.
    let (mut assembled_set, mut assembled) = optimized.remove(0);
    while !optimized.is_empty() {
        let next_idx = optimized
            .iter()
            .position(|(set, _)| !graph.edges_across(&assembled_set, set).is_empty())
            .unwrap_or(0);
        let (set, tree) = optimized.remove(next_idx);
        // Keep the smaller side as the build input.
        let assembled_card = est.join_card(&assembled_set);
        let next_card = est.join_card(&set);
        assembled = if next_card <= assembled_card {
            JoinTree::join(tree, assembled)
        } else {
            JoinTree::join(assembled, tree)
        };
        assembled_set.extend(set);
    }
    assembled
}

/// Expands a fact table into its snowflake: follow PKFK edges pointing away
/// from the already-included relations, never claiming another fact table or
/// a relation already claimed by an earlier snowflake.
fn expand_snowflake(graph: &JoinGraph, fact: RelId, claimed: &BTreeSet<RelId>) -> BTreeSet<RelId> {
    let mut members: BTreeSet<RelId> = [fact].into_iter().collect();
    let mut frontier = vec![fact];
    while let Some(current) = frontier.pop() {
        for edge in graph.edges_of(current) {
            let other = edge.other(current);
            if members.contains(&other) {
                continue;
            }
            if claimed.contains(&other) && other != fact {
                continue;
            }
            // Follow the edge only if it points outwards (the join column is
            // a key of `other`): that is what makes `other` a dimension of
            // this snowflake.
            if edge.unique_on(other) {
                members.insert(other);
                frontier.push(other);
            }
        }
    }
    members
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::exhaustive_best_right_deep;
    use bqo_plan::{GraphShape, JoinEdge, RelationInfo};

    /// Single-fact snowflake — Algorithm 3 must behave exactly like
    /// Algorithm 2.
    fn single_fact() -> JoinGraph {
        let mut g = JoinGraph::new();
        let fact = g.add_relation(RelationInfo::new("fact", 1_000_000.0, 1_000_000.0));
        let d1 = g.add_relation(RelationInfo::new("d1", 1000.0, 10.0));
        let d2 = g.add_relation(RelationInfo::new("d2", 5000.0, 5000.0));
        let d21 = g.add_relation(RelationInfo::new("d21", 50.0, 5.0));
        g.add_edge(JoinEdge::pkfk(fact, "d1_sk", d1, "sk", 1000.0));
        g.add_edge(JoinEdge::pkfk(fact, "d2_sk", d2, "sk", 5000.0));
        g.add_edge(JoinEdge::pkfk(d2, "d21_sk", d21, "sk", 50.0));
        g
    }

    /// Two fact tables sharing one dimension plus private dimensions; the
    /// facts join each other on a non-key column (a JOB-style shape).
    fn multi_fact() -> JoinGraph {
        let mut g = JoinGraph::new();
        let f1 = g.add_relation(RelationInfo::new("f1", 800_000.0, 800_000.0));
        let f2 = g.add_relation(RelationInfo::new("f2", 300_000.0, 300_000.0));
        let shared = g.add_relation(RelationInfo::new("shared_dim", 2000.0, 100.0));
        let d1 = g.add_relation(RelationInfo::new("f1_dim", 500.0, 50.0));
        let d2 = g.add_relation(RelationInfo::new("f2_dim", 800.0, 800.0));
        g.add_edge(JoinEdge::pkfk(f1, "shared_sk", shared, "sk", 2000.0));
        g.add_edge(JoinEdge::pkfk(f2, "shared_sk", shared, "sk", 2000.0));
        g.add_edge(JoinEdge::pkfk(f1, "d1_sk", d1, "sk", 500.0));
        g.add_edge(JoinEdge::pkfk(f2, "d2_sk", d2, "sk", 800.0));
        g.add_edge(JoinEdge::new(
            f1, f2, "mid", "mid", 50_000.0, 50_000.0, false, false,
        ));
        g
    }

    #[test]
    fn single_fact_snowflake_matches_exhaustive_optimum() {
        let g = single_fact();
        assert!(matches!(g.classify(), GraphShape::Snowflake { .. }));
        let model = CostModel::new(&g);
        let tree = optimize_join_graph(&g, &model);
        assert!(tree.has_no_cross_products(&g));
        let cost = model.cout_join_tree(&tree, true).total;
        let (_, best) = exhaustive_best_right_deep(&g, &model, true).unwrap();
        assert!(cost <= best * (1.0 + 1e-9) + 1e-6, "{cost} vs {best}");
    }

    #[test]
    fn multi_fact_graph_produces_complete_valid_plan() {
        let g = multi_fact();
        assert_eq!(g.fact_tables().len(), 2);
        let model = CostModel::new(&g);
        let tree = optimize_join_graph(&g, &model);
        assert_eq!(tree.relation_set().len(), 5);
        assert!(tree.has_no_cross_products(&g));
    }

    #[test]
    fn multi_fact_plan_is_competitive_with_exhaustive_right_deep() {
        let g = multi_fact();
        let model = CostModel::new(&g);
        let tree = optimize_join_graph(&g, &model);
        let cost = model.cout_join_tree(&tree, true).total;
        let (_, best) = exhaustive_best_right_deep(&g, &model, true).unwrap();
        // Algorithm 3 is a heuristic; it should stay within a small factor of
        // the exhaustive right-deep optimum on this 5-relation query.
        assert!(
            cost <= best * 3.0,
            "algorithm 3 produced {cost}, exhaustive best is {best}"
        );
    }

    #[test]
    fn snowflake_expansion_claims_dimension_chains_but_not_other_facts() {
        let g = multi_fact();
        let f2 = g.relation_by_name("f2").unwrap();
        let f1 = g.relation_by_name("f1").unwrap();
        let shared = g.relation_by_name("shared_dim").unwrap();
        let d2 = g.relation_by_name("f2_dim").unwrap();
        let claimed: BTreeSet<RelId> = [f1, f2].into_iter().collect();
        let members = expand_snowflake(&g, f2, &claimed);
        assert!(members.contains(&f2));
        assert!(members.contains(&shared));
        assert!(members.contains(&d2));
        assert!(!members.contains(&f1));
    }

    #[test]
    fn dimension_only_graph_still_optimizes() {
        // A graph where every relation is someone's key side: no fact table
        // according to the Section 6.2 rule; the largest relation is used.
        let mut g = JoinGraph::new();
        let a = g.add_relation(RelationInfo::new("a", 1000.0, 1000.0));
        let b = g.add_relation(RelationInfo::new("b", 100.0, 50.0));
        g.add_edge(JoinEdge::new(
            a, b, "id", "a_id", 1000.0, 100.0, true, false,
        ));
        let model = CostModel::new(&g);
        let tree = optimize_join_graph(&g, &model);
        assert_eq!(tree.relation_set().len(), 2);
    }

    #[test]
    fn single_relation_graph() {
        let mut g = JoinGraph::new();
        g.add_relation(RelationInfo::new("only", 5.0, 5.0));
        let model = CostModel::new(&g);
        assert_eq!(optimize_join_graph(&g, &model), JoinTree::Leaf(RelId(0)));
    }
}
