//! Multi-fact-table reporting query (the JOB-like shape that exercises
//! Algorithm 3): two fact tables share a large dimension and are linked by a
//! non-PKFK join. Shows the extracted plan, the bitvector filter placements
//! and the executed tuple counts for both optimizers.
//!
//! ```text
//! cargo run -p bqo-examples --bin multi_fact_report --release
//! ```

use bqo_core::workloads::{job_like, Scale};
use bqo_core::{Engine, OptimizerChoice};

fn main() {
    let workload = job_like::generate(Scale(0.1), 12, 7);
    println!("workload: {}", workload.stats());
    let engine = Engine::from_catalog(workload.catalog);

    // Pick the multi-fact queries (every third query by construction).
    let multi: Vec<_> = workload
        .queries
        .iter()
        .filter(|q| q.name.ends_with("2") || q.name.ends_with("5") || q.name.ends_with("8"))
        .collect();

    for query in multi {
        let graph = query
            .to_join_graph(engine.catalog())
            .expect("query resolves");
        println!(
            "\n=== {} — {} relations, {} joins, {} fact tables ===",
            query.name,
            graph.num_relations(),
            query.num_joins(),
            graph.fact_tables().len()
        );
        let session = engine.session();
        for choice in [OptimizerChoice::Baseline, OptimizerChoice::Bqo] {
            let stmt = engine.prepare(query, choice).expect("query prepares");
            let result = session.run(&stmt).expect("query executes");
            println!("--- {} ---", choice.display_label());
            println!("{}", session.explain(&stmt));
            println!(
                "result rows {}, join tuples {}, filters {} (eliminated {}), wall {:.1} ms",
                result.output_rows,
                result.metrics.tuples_by_kind(bqo_core::OperatorKind::Join),
                result.metrics.filters_created,
                result.metrics.filter_stats.eliminated,
                result.metrics.elapsed_secs() * 1e3
            );
        }
    }
}
