//! Plan-space explorer: reproduce the Table 2 story interactively.
//!
//! For stars, chains and snowflakes of growing size, print how many
//! right-deep plans exist in total, how many candidates the paper's theorems
//! need, and verify that the candidate set always contains a minimum-cost
//! plan under the bitvector-aware cost function.
//!
//! ```text
//! cargo run -p bqo-examples --bin plan_space_explorer
//! ```

use bqo_core::optimizer::{candidate_plans, count_right_deep_plans, exhaustive_best_right_deep};
use bqo_core::plan::CostModel;
use bqo_core::workloads::{snowflake, star, Scale};

fn explore(label: &str, graph: &bqo_core::JoinGraph) {
    let model = CostModel::new(graph);
    let total = count_right_deep_plans(graph);
    let candidates = candidate_plans(graph).expect("classified shape");
    let candidate_best = candidates
        .iter()
        .map(|p| model.cout_right_deep_total(p, true))
        .fold(f64::INFINITY, f64::min);
    let (_, exhaustive_best) =
        exhaustive_best_right_deep(graph, &model, true).expect("non-empty plan space");
    let contains_optimum = candidate_best <= exhaustive_best * (1.0 + 1e-9);
    println!(
        "{label:<28} relations {:>2}   plans {:>8}   candidates {:>3}   optimum in candidates: {}",
        graph.num_relations(),
        total,
        candidates.len(),
        if contains_optimum { "yes" } else { "NO" }
    );
    assert!(contains_optimum);
}

fn main() {
    println!("Table 2 — plan space complexity (exhaustive vs candidate sets)\n");

    for n in 2..=7 {
        let catalog = star::build_catalog(Scale(0.01), n, 11);
        let predicates: Vec<(usize, i64)> = (0..n).map(|i| (i, 1 + (i as i64 * 7) % 20)).collect();
        let query = star::build_query(format!("star{n}"), n, &predicates);
        let graph = query.to_join_graph(&catalog).expect("star query resolves");
        explore(&format!("star, {n} dimensions"), &graph);
    }

    println!();
    for lengths in [vec![1usize, 2], vec![2, 2], vec![1, 2, 3], vec![2, 2, 2]] {
        let catalog = snowflake::build_catalog(Scale(0.01), &lengths, 13);
        let predicates: Vec<(usize, usize, i64)> = lengths
            .iter()
            .enumerate()
            .map(|(i, &len)| (i, len, 1 + (i as i64 * 5) % 20))
            .collect();
        let query = snowflake::build_query(format!("snow{lengths:?}"), &lengths, &predicates);
        let graph = query
            .to_join_graph(&catalog)
            .expect("snowflake query resolves");
        explore(&format!("snowflake, branches {lengths:?}"), &graph);
    }
}
