//! Star-schema plan-space analysis (the Section 4 story, hands on).
//!
//! Enumerates *every* right-deep plan without cross products for a star
//! query, costs each with and without bitvector filters, and shows that
//! (a) the plan space is exponential, (b) with bitvector filters the linear
//! candidate set of Theorem 4.1 contains the optimum, and (c) the plan the
//! conventional optimizer picks is no longer optimal once filters are
//! considered.
//!
//! ```text
//! cargo run -p bqo-examples --bin star_schema_analysis
//! ```

use bqo_core::optimizer::{candidate_plans, enumerate_right_deep};
use bqo_core::plan::CostModel;
use bqo_core::workloads::{star, Scale};
use bqo_core::{Engine, OptimizerChoice};

fn main() {
    let num_dims = 5;
    let workload = star::generate(Scale(0.05), num_dims, 1, 2024);
    let engine = Engine::from_catalog(workload.catalog);
    // Hand-build a query with mixed selectivities: dim0 very selective,
    // dim1 unfiltered, the rest in between.
    let query = star::build_query("analysis", num_dims, &[(0, 1), (2, 10), (3, 4), (4, 16)]);
    let graph = query
        .to_join_graph(engine.catalog())
        .expect("query resolves");
    let model = CostModel::new(&graph);

    let plans = enumerate_right_deep(&graph);
    println!(
        "star query with {} relations: {} right-deep plans without cross products",
        graph.num_relations(),
        plans.len()
    );

    let mut best_plain = (f64::INFINITY, None);
    let mut best_bv = (f64::INFINITY, None);
    for plan in &plans {
        let plain = model.cout_right_deep_total(plan, false);
        let bv = model.cout_right_deep_total(plan, true);
        if plain < best_plain.0 {
            best_plain = (plain, Some(plan.clone()));
        }
        if bv < best_bv.0 {
            best_bv = (bv, Some(plan.clone()));
        }
    }
    let best_plain_plan = best_plain.1.unwrap();
    let best_bv_plan = best_bv.1.unwrap();

    println!("\nbest plan ignoring bitvector filters : {best_plain_plan}");
    println!("  Cout without filters = {:.0}", best_plain.0);
    println!(
        "  Cout after post-processing filters  = {:.0}",
        model.cout_right_deep_total(&best_plain_plan, true)
    );
    println!("\nbest plan accounting for bitvector filters: {best_bv_plan}");
    println!("  bitvector-aware Cout = {:.0}", best_bv.0);

    let candidates = candidate_plans(&graph).expect("star query has a candidate set");
    let candidate_best = candidates
        .iter()
        .map(|p| model.cout_right_deep_total(p, true))
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nTheorem 4.1 candidate set: {} plans (vs {} in the full space); best candidate Cout = {:.0}",
        candidates.len(),
        plans.len(),
        candidate_best
    );
    assert!(candidate_best <= best_bv.0 * (1.0 + 1e-9));

    // Execute both optimizers' choices to see the difference on real data.
    let session = engine.session();
    for choice in [OptimizerChoice::Baseline, OptimizerChoice::Bqo] {
        let stmt = engine.prepare(&query, choice).expect("query prepares");
        let result = session.run(&stmt).expect("query executes");
        println!(
            "\n{}: estimated Cout {:.0}, joins produced {} tuples, wall time {:.2} ms",
            choice.label(),
            stmt.estimated_cost().total,
            result.metrics.tuples_by_kind(bqo_core::OperatorKind::Join),
            result.metrics.elapsed_secs() * 1e3
        );
    }
}
