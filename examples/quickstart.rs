//! Quickstart: build a tiny warehouse by hand with the [`Engine`] builder,
//! prepare a *parameterized* query once, serve it for several parameter
//! bindings through a [`Session`] — repeated binds skip the optimizer via the
//! engine's plan cache — then serve the same template as *SQL text* (landing
//! on the same cached plan), and finally shape a concurrent burst of requests
//! through the admission-controlled [`Server`] front end.
//!
//! ```text
//! cargo run -p bqo-examples --bin quickstart
//! ```

use bqo_core::{
    CompareOp, Engine, ForeignKey, OptimizerChoice, Params, QuerySpec, Request, Server,
    ServerConfig, Session, TableBuilder,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // A small sales warehouse: one fact table, two dimensions.
    let num_products = 2_000usize;
    let num_stores = 200usize;
    let num_sales = 500_000usize;

    let engine = Engine::builder()
        .table(
            TableBuilder::new("product")
                .with_i64("product_sk", (0..num_products as i64).collect())
                .with_i64(
                    "category",
                    (0..num_products).map(|_| rng.gen_range(0..40)).collect(),
                )
                .build()
                .expect("product table"),
        )
        .table(
            TableBuilder::new("store")
                .with_i64("store_sk", (0..num_stores as i64).collect())
                .with_i64(
                    "region",
                    (0..num_stores).map(|_| rng.gen_range(0..10)).collect(),
                )
                .build()
                .expect("store table"),
        )
        .table(
            TableBuilder::new("sales")
                .with_i64(
                    "product_sk",
                    (0..num_sales)
                        .map(|_| rng.gen_range(0..num_products as i64))
                        .collect(),
                )
                .with_i64(
                    "store_sk",
                    (0..num_sales)
                        .map(|_| rng.gen_range(0..num_stores as i64))
                        .collect(),
                )
                .with_f64(
                    "amount",
                    (0..num_sales).map(|_| rng.gen_range(1.0..500.0)).collect(),
                )
                .build()
                .expect("sales table"),
        )
        .primary_key("product", "product_sk")
        .primary_key("store", "store_sk")
        .foreign_key(ForeignKey::new(
            "sales",
            "product_sk",
            "product",
            "product_sk",
        ))
        .foreign_key(ForeignKey::new("sales", "store_sk", "store", "store_sk"))
        .build()
        .expect("engine builds");

    // "How many sales of category-$category products happened in
    // region-$region stores?" — one template, bound per request.
    let template = QuerySpec::new("quickstart")
        .table("sales")
        .table("product")
        .table("store")
        .join("sales", "product_sk", "product", "product_sk")
        .join("sales", "store_sk", "store", "store_sk")
        .param_predicate("product", "category", CompareOp::Eq, "category")
        .param_predicate("store", "region", CompareOp::Eq, "region");

    let session = engine.session();
    for choice in [OptimizerChoice::Baseline, OptimizerChoice::Bqo] {
        let params = Params::new().set("category", 3i64).set("region", 0i64);
        let stmt = engine
            .bind(&template, &params, choice)
            .expect("query binds");
        println!("=== {} ===", choice.label());
        println!("{}", session.explain(&stmt));
        serve(&session, choice.label(), &stmt);
    }

    // Serve more bindings of the same template: the plans above are reused
    // straight from the plan cache — no optimizer run, as the counters show.
    for (category, region) in [(7i64, 4i64), (12, 9), (3, 0)] {
        let params = Params::new()
            .set("category", category)
            .set("region", region);
        let stmt = engine
            .bind(&template, &params, OptimizerChoice::Bqo)
            .expect("query binds");
        serve(
            &session,
            &format!(
                "BQO bind category={category} region={region} ({:?})",
                stmt.cache_status()
            ),
            &stmt,
        );
    }
    // One engine-wide snapshot: plan-cache traffic, worker-pool size and
    // catalog shape in a single call.
    let snapshot = engine.stats();
    println!(
        "plan cache          : {} hits, {} misses, {} re-optimizations ({} evictions, {}/{} entries)",
        snapshot.cache.hits,
        snapshot.cache.misses,
        snapshot.cache.reoptimizations,
        snapshot.cache.evictions,
        snapshot.cache.len,
        snapshot.cache.capacity
    );
    println!(
        "engine              : {} pooled workers, {} tables (catalog v{})",
        snapshot.pool_workers, snapshot.catalog_tables, snapshot.catalog_version
    );

    // The same template as SQL text: `$category` / `$region` are named
    // placeholders, and the lowered query normalizes to the *same*
    // plan-cache fingerprint as the hand-built spec above — the very first
    // SQL bind is already a cache hit.
    let sql = "SELECT * FROM sales \
               JOIN product ON sales.product_sk = product.product_sk \
               JOIN store ON sales.store_sk = store.store_sk \
               WHERE product.category = $category AND store.region = $region";
    for (category, region) in [(3i64, 0i64), (21, 7), (38, 2)] {
        let params = Params::new()
            .set("category", category)
            .set("region", region);
        let stmt = engine
            .bind_sql(sql, &params, OptimizerChoice::Bqo)
            .expect("SQL binds");
        serve(
            &session,
            &format!(
                "SQL bind category={category} region={region} ({:?})",
                stmt.cache_status()
            ),
            &stmt,
        );
    }
    let cache = engine.stats().cache;
    println!(
        "plan cache after SQL: {} hits, {} misses, {} re-optimizations",
        cache.hits, cache.misses, cache.reoptimizations
    );

    // Production-style serving: a burst of binds from two tenants submitted
    // through the multi-tenant Server (priority/deadline scheduling, at most
    // 2 queries executing concurrently, backpressure past 32 pending, the
    // interactive tenant dispatching ahead of the batch one). Execution
    // reuses the engine's plan cache and persistent worker pool.
    let server = Server::new(
        engine.clone(),
        ServerConfig::default()
            .with_max_concurrent_queries(2)
            .with_queue_capacity(32),
    );
    let tickets: Vec<_> = (0..10)
        .map(|i| {
            let params = Params::new().set("category", i % 40).set("region", i % 10);
            let (tenant, priority) = if i % 2 == 0 {
                ("dashboards", 1) // interactive: dispatch first
            } else {
                ("batch-reports", 0)
            };
            let request = Request::builder()
                .query(&template)
                .params(&params)
                .optimizer(OptimizerChoice::Bqo)
                .tenant(tenant)
                .priority(priority)
                .deadline(Duration::from_secs(30))
                .build()
                .expect("request is well-formed");
            server.submit(request).expect("burst fits the queue")
        })
        .collect();
    let served: u64 = tickets
        .into_iter()
        .map(|t| t.wait().expect("request serves").result.output_rows)
        .sum();
    let stats = server.stats();
    println!(
        "server burst        : {} requests -> {} rows ({} completed, {} rejected, {:.2} ms total wall, p99 run {:?})",
        stats.admitted,
        served,
        stats.completed,
        stats.rejected,
        stats.total_wall.as_secs_f64() * 1e3,
        stats.run_time.p99
    );
    for tenant in ["dashboards", "batch-reports"] {
        let t = server.stats_for(tenant);
        println!(
            "tenant {tenant:<13}: {} admitted, {} completed, mean queue wait {:?}",
            t.admitted, t.completed, t.queue_wait.mean
        );
    }
    server.shutdown();
}

fn serve(session: &Session, label: &str, stmt: &bqo_core::PreparedStatement) {
    let result = session.run(stmt).expect("query runs");
    println!("--- {label} ---");
    println!("estimated Cout      : {:.0}", stmt.estimated_cost().total);
    println!("result rows         : {}", result.output_rows);
    println!(
        "tuples through joins: {}",
        result.metrics.tuples_by_kind(bqo_core::OperatorKind::Join)
    );
    println!(
        "bitvector filters   : {} created, {} tuples eliminated",
        result.metrics.filters_created, result.metrics.filter_stats.eliminated
    );
    println!(
        "wall time           : {:.2} ms\n",
        result.metrics.elapsed_secs() * 1e3
    );
}
