//! Quickstart: build a tiny warehouse by hand with the [`Engine`] builder,
//! ask the bitvector-aware optimizer for a plan, inspect it, and run it.
//!
//! ```text
//! cargo run -p bqo-examples --bin quickstart
//! ```

use bqo_core::{
    ColumnPredicate, CompareOp, Engine, ForeignKey, OptimizerChoice, QuerySpec, TableBuilder,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // A small sales warehouse: one fact table, two dimensions.
    let num_products = 2_000usize;
    let num_stores = 200usize;
    let num_sales = 500_000usize;

    let engine = Engine::builder()
        .table(
            TableBuilder::new("product")
                .with_i64("product_sk", (0..num_products as i64).collect())
                .with_i64(
                    "category",
                    (0..num_products).map(|_| rng.gen_range(0..40)).collect(),
                )
                .build()
                .expect("product table"),
        )
        .table(
            TableBuilder::new("store")
                .with_i64("store_sk", (0..num_stores as i64).collect())
                .with_i64(
                    "region",
                    (0..num_stores).map(|_| rng.gen_range(0..10)).collect(),
                )
                .build()
                .expect("store table"),
        )
        .table(
            TableBuilder::new("sales")
                .with_i64(
                    "product_sk",
                    (0..num_sales)
                        .map(|_| rng.gen_range(0..num_products as i64))
                        .collect(),
                )
                .with_i64(
                    "store_sk",
                    (0..num_sales)
                        .map(|_| rng.gen_range(0..num_stores as i64))
                        .collect(),
                )
                .with_f64(
                    "amount",
                    (0..num_sales).map(|_| rng.gen_range(1.0..500.0)).collect(),
                )
                .build()
                .expect("sales table"),
        )
        .primary_key("product", "product_sk")
        .primary_key("store", "store_sk")
        .foreign_key(ForeignKey::new(
            "sales",
            "product_sk",
            "product",
            "product_sk",
        ))
        .foreign_key(ForeignKey::new("sales", "store_sk", "store", "store_sk"))
        .build()
        .expect("engine builds");

    // "How many sales of category-3 products happened in region 0 stores?"
    let query = QuerySpec::new("quickstart")
        .table("sales")
        .table("product")
        .table("store")
        .join("sales", "product_sk", "product", "product_sk")
        .join("sales", "store_sk", "store", "store_sk")
        .predicate(
            "product",
            ColumnPredicate::new("category", CompareOp::Eq, 3i64),
        )
        .predicate("store", ColumnPredicate::new("region", CompareOp::Eq, 0i64));

    for choice in [OptimizerChoice::Baseline, OptimizerChoice::Bqo] {
        let prepared = engine.prepare(&query, choice).expect("query prepares");
        let result = prepared.run().expect("query runs");
        println!("=== {} ===", choice.label());
        println!("{}", prepared.explain());
        println!(
            "estimated Cout      : {:.0}",
            prepared.estimated_cost().total
        );
        println!("result rows         : {}", result.output_rows);
        println!(
            "tuples through joins: {}",
            result.metrics.tuples_by_kind(bqo_core::OperatorKind::Join)
        );
        println!(
            "bitvector filters   : {} created, {} tuples eliminated",
            result.metrics.filters_created, result.metrics.filter_stats.eliminated
        );
        println!(
            "wall time           : {:.2} ms\n",
            result.metrics.elapsed_secs() * 1e3
        );
    }
}
