//! Quickstart: build a tiny warehouse by hand, ask the bitvector-aware
//! optimizer for a plan, inspect it, and run it.
//!
//! ```text
//! cargo run -p bqo-examples --bin quickstart
//! ```

use bqo_core::{
    ColumnPredicate, CompareOp, Database, ForeignKey, OptimizerChoice, QuerySpec, TableBuilder,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // A small sales warehouse: one fact table, two dimensions.
    let num_products = 2_000usize;
    let num_stores = 200usize;
    let num_sales = 500_000usize;

    let mut db = Database::new();
    db.register_table(
        TableBuilder::new("product")
            .with_i64("product_sk", (0..num_products as i64).collect())
            .with_i64(
                "category",
                (0..num_products).map(|_| rng.gen_range(0..40)).collect(),
            )
            .build()
            .expect("product table"),
    );
    db.register_table(
        TableBuilder::new("store")
            .with_i64("store_sk", (0..num_stores as i64).collect())
            .with_i64(
                "region",
                (0..num_stores).map(|_| rng.gen_range(0..10)).collect(),
            )
            .build()
            .expect("store table"),
    );
    db.register_table(
        TableBuilder::new("sales")
            .with_i64(
                "product_sk",
                (0..num_sales)
                    .map(|_| rng.gen_range(0..num_products as i64))
                    .collect(),
            )
            .with_i64(
                "store_sk",
                (0..num_sales)
                    .map(|_| rng.gen_range(0..num_stores as i64))
                    .collect(),
            )
            .with_f64(
                "amount",
                (0..num_sales).map(|_| rng.gen_range(1.0..500.0)).collect(),
            )
            .build()
            .expect("sales table"),
    );
    db.declare_primary_key("product", "product_sk").unwrap();
    db.declare_primary_key("store", "store_sk").unwrap();
    db.declare_foreign_key(ForeignKey::new(
        "sales",
        "product_sk",
        "product",
        "product_sk",
    ))
    .unwrap();
    db.declare_foreign_key(ForeignKey::new("sales", "store_sk", "store", "store_sk"))
        .unwrap();

    // "How many sales of category-3 products happened in region 0 stores?"
    let query = QuerySpec::new("quickstart")
        .table("sales")
        .table("product")
        .table("store")
        .join("sales", "product_sk", "product", "product_sk")
        .join("sales", "store_sk", "store", "store_sk")
        .predicate(
            "product",
            ColumnPredicate::new("category", CompareOp::Eq, 3i64),
        )
        .predicate("store", ColumnPredicate::new("region", CompareOp::Eq, 0i64));

    for choice in [OptimizerChoice::Baseline, OptimizerChoice::Bqo] {
        let (optimized, result) = db.run(&query, choice).expect("query runs");
        println!("=== {} ===", choice.label());
        println!("{}", optimized.explain());
        println!(
            "estimated Cout      : {:.0}",
            optimized.estimated_cost.total
        );
        println!("result rows         : {}", result.output_rows);
        println!(
            "tuples through joins: {}",
            result.metrics.tuples_by_kind(bqo_core::OperatorKind::Join)
        );
        println!(
            "bitvector filters   : {} created, {} tuples eliminated",
            result.metrics.filters_created, result.metrics.filter_stats.eliminated
        );
        println!(
            "wall time           : {:.2} ms\n",
            result.metrics.elapsed_secs() * 1e3
        );
    }
}
