//! A "dashboard refresh" over a snowflake warehouse: run a batch of
//! snowflake aggregate queries and compare the baseline optimizer against
//! the bitvector-aware optimizer, the way the paper's Figure 8 compares
//! workload-level CPU.
//!
//! ```text
//! cargo run -p bqo-examples --bin snowflake_dashboard --release
//! ```

use bqo_core::experiment::{run_workload, ExperimentOptions};
use bqo_core::workloads::{snowflake, Scale};

fn main() {
    // fact -> 4 branches of depth 1..3, a dozen dashboard tiles (queries).
    let workload = snowflake::generate(Scale(0.2), &[1, 2, 2, 3], 12, 99);
    println!("workload: {}", workload.stats());

    let report = run_workload(&workload, ExperimentOptions::default()).expect("workload runs");

    println!("\nper-query comparison (Original vs BQO):");
    println!(
        "{:<18} {:>10} {:>14} {:>14} {:>8}",
        "query", "joins", "orig work", "bqo work", "ratio"
    );
    for q in &report.queries {
        println!(
            "{:<18} {:>10} {:>14} {:>14} {:>8.2}",
            q.name,
            q.num_joins,
            q.baseline.logical_work,
            q.bqo.logical_work,
            q.work_ratio()
        );
    }

    println!("\nby selectivity group (Figure 8 style):");
    for group in report.selectivity_groups() {
        println!(
            "  group {}: {} queries, BQO/Original work = {:.2}",
            group.group.label(),
            group.queries,
            group.work_ratio()
        );
    }

    let tuples = report.tuple_breakdown();
    println!("\ntuples output by operator class (Figure 9 style, normalized by Original total):");
    let base_total = tuples.baseline_total().max(1) as f64;
    println!(
        "  Original: join {:.2}  leaf {:.2}  other {:.2}",
        tuples.baseline_join as f64 / base_total,
        tuples.baseline_leaf as f64 / base_total,
        tuples.baseline_other as f64 / base_total
    );
    println!(
        "  BQO     : join {:.2}  leaf {:.2}  other {:.2}",
        tuples.bqo_join as f64 / base_total,
        tuples.bqo_leaf as f64 / base_total,
        tuples.bqo_other as f64 / base_total
    );

    println!(
        "\ntotal: BQO does {:.0}% of the baseline's work ({:.0}% of its wall time)",
        report.total_work_ratio() * 100.0,
        report.total_time_ratio() * 100.0
    );
}
